//! The [`Campaign`] experiment grid: axes, builder, parallel execution.

use crate::pool::{default_threads, parallel_for_in_order, parallel_map};
use crate::report::{CampaignReport, CellReport, CellStats};
use crate::sink::{AggregateSink, CampaignMeta, CellRecord, ResultSink};
use acs_core::{
    synthesize_acs_best, synthesize_acs_warm, synthesize_wcs, StaticSchedule, SynthesisOptions,
};
use acs_model::units::Energy;
use acs_model::{SchedulingClass, TaskSet};
use acs_multi::{partition, GlobalRun, MachineRun, Partition, PartitionHeuristic, Placement};
use acs_power::Processor;
use acs_sim::{
    ArrivalKind, CcRm, GreedyReclaim, NoDvs, Policy, ReOpt, ReOptConfig, SimOptions, SimReport,
    Simulator, SolverCache, StaticSpeed,
};
use acs_trace::TraceSource;
use acs_workloads::{TaskWorkloads, WorkloadDist};
use std::collections::HashMap;
use std::sync::Arc;

/// Which offline schedule a grid cell runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleChoice {
    /// No static schedule: the policy runs purely online (only valid for
    /// policies with `needs_schedule() == false`).
    Unscheduled,
    /// The worst-case-optimal baseline schedule (`synthesize_wcs`).
    Wcs,
    /// The paper's average-case-aware schedule (`synthesize_acs_warm`, or
    /// `synthesize_acs_best` under [`CampaignBuilder::acs_multistart`]).
    Acs,
}

impl ScheduleChoice {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ScheduleChoice::Unscheduled => "-",
            ScheduleChoice::Wcs => "WCS",
            ScheduleChoice::Acs => "ACS",
        }
    }
}

impl std::fmt::Display for ScheduleChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A named, repeatable recipe for instantiating an online policy.
///
/// Policies carry mutable state, so each simulation run needs a fresh
/// instance; the spec wraps a thread-safe factory. Any `impl Policy`
/// works — the built-ins have shorthands.
#[derive(Clone)]
pub struct PolicySpec {
    name: String,
    needs_schedule: bool,
    make: Arc<dyn Fn() -> Box<dyn Policy> + Send + Sync>,
}

impl PolicySpec {
    /// Wraps an arbitrary policy factory. The name and schedule
    /// requirement are probed from one instance.
    pub fn custom<F>(make: F) -> Self
    where
        F: Fn() -> Box<dyn Policy> + Send + Sync + 'static,
    {
        let probe = make();
        PolicySpec {
            name: probe.name().to_string(),
            needs_schedule: probe.needs_schedule(),
            make: Arc::new(make),
        }
    }

    /// The no-DVS reference policy.
    pub fn no_dvs() -> Self {
        PolicySpec::custom(|| Box::new(NoDvs))
    }

    /// The schedule's static speeds, no reclamation.
    pub fn static_speed() -> Self {
        PolicySpec::custom(|| Box::new(StaticSpeed))
    }

    /// The paper's greedy slack reclamation.
    pub fn greedy() -> Self {
        PolicySpec::custom(|| Box::new(GreedyReclaim))
    }

    /// Cycle-conserving RM (online-only baseline).
    pub fn ccrm() -> Self {
        PolicySpec::custom(|| Box::new(CcRm::new()))
    }

    /// The paper's online re-optimizing ACS ([`ReOpt`]) with the default
    /// configuration and one solver cache **shared across every run of
    /// the campaign** — repeated boundary states across seeds, schedules
    /// and hyper-periods hit the cache instead of the solver. The cache
    /// hit rate lands in [`CellStats`] and
    /// [`CampaignReport::solver_cache_hit_rate`].
    pub fn reopt() -> Self {
        PolicySpec::reopt_with(ReOptConfig::default(), 4096)
    }

    /// [`PolicySpec::reopt`] with an explicit configuration and shared
    /// cache capacity (`0` disables the cache: every boundary state is
    /// re-solved — results are identical, only slower).
    pub fn reopt_with(cfg: ReOptConfig, cache_capacity: usize) -> Self {
        let cache = (cache_capacity > 0).then(|| Arc::new(SolverCache::new(cache_capacity)));
        PolicySpec::custom(move || {
            let policy = ReOpt::with_config(cfg.clone());
            Box::new(match &cache {
                Some(c) => policy.with_cache(c.clone()),
                None => policy,
            })
        })
    }

    /// [`PolicySpec::reopt_with`] wired to a **caller-owned** solver
    /// cache instead of a private per-spec one, so the cache — and its
    /// warmth — outlives any single campaign. This is how the campaign
    /// server keeps repeated submissions hitting warm solves: every
    /// submission's `reopt` cells share the server's process-wide
    /// [`SolverCache`]. Sharing never changes results (cached solves are
    /// pure functions of their keys); only hit *counts* can shift with
    /// interleaving.
    pub fn reopt_with_cache(cfg: ReOptConfig, cache: Arc<SolverCache>) -> Self {
        PolicySpec::custom(move || {
            Box::new(ReOpt::with_config(cfg.clone()).with_cache(cache.clone()))
        })
    }

    /// The policy's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` when the policy needs a static schedule.
    pub fn needs_schedule(&self) -> bool {
        self.needs_schedule
    }

    /// Builds a fresh policy instance.
    pub fn instantiate(&self) -> Box<dyn Policy> {
        (self.make)()
    }
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicySpec")
            .field("name", &self.name)
            .field("needs_schedule", &self.needs_schedule)
            .finish_non_exhaustive()
    }
}

/// A per-task workload-distribution family, instantiated per task set.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's truncated normal: mean ACEC, `σ = (WCEC − BCEC)/6`,
    /// bounds `[BCEC, WCEC]`.
    Paper,
    /// Uniform on `[BCEC, WCEC]`.
    Uniform,
    /// Two-point mixture: BCEC with probability `1 − p_heavy`, WCEC with
    /// probability `p_heavy`.
    Bimodal {
        /// Probability of the heavy (WCEC) case.
        p_heavy: f64,
    },
    /// Every instance takes exactly its ACEC.
    ConstantAcec,
    /// Every instance takes exactly its WCEC (the worst case).
    ConstantWcec,
}

impl WorkloadSpec {
    /// Display name used in reports.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Paper => "paper-normal".into(),
            WorkloadSpec::Uniform => "uniform".into(),
            WorkloadSpec::Bimodal { p_heavy } => format!("bimodal(p={p_heavy})"),
            WorkloadSpec::ConstantAcec => "acec".into(),
            WorkloadSpec::ConstantWcec => "wcec".into(),
        }
    }

    /// Instantiates the per-task distributions for `set`.
    pub fn dists(&self, set: &TaskSet) -> Vec<WorkloadDist> {
        set.tasks()
            .iter()
            .map(|t| match self {
                WorkloadSpec::Paper => WorkloadDist::paper_normal(t),
                WorkloadSpec::Uniform => WorkloadDist::Uniform {
                    lo: t.bcec().as_cycles(),
                    hi: t.wcec().as_cycles(),
                },
                WorkloadSpec::Bimodal { p_heavy } => WorkloadDist::Bimodal {
                    lo: t.bcec().as_cycles(),
                    hi: t.wcec().as_cycles(),
                    p_heavy: *p_heavy,
                },
                WorkloadSpec::ConstantAcec => WorkloadDist::Constant(t.acec().as_cycles()),
                WorkloadSpec::ConstantWcec => WorkloadDist::Constant(t.wcec().as_cycles()),
            })
            .collect()
    }
}

/// Errors detected while assembling a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignError {
    /// One or more required grid axes have no entries, so the grid would
    /// be empty. Every missing axis is named (not just the first), each
    /// with the builder method that fills it.
    EmptyAxes {
        /// The empty required axes, in builder order (`"task_sets"`,
        /// `"processors"`, `"policies"`, `"workloads"`).
        axes: Vec<&'static str>,
    },
    /// A policy requires a schedule but the schedule axis offers none.
    ScheduleRequired {
        /// The policy's name.
        policy: String,
    },
    /// Two entries on one axis share a name; reports match cells by name,
    /// so duplicates would silently alias.
    DuplicateName {
        /// Which axis (`"task_sets"`, `"processors"`, ...).
        axis: &'static str,
        /// The repeated name.
        name: String,
    },
    /// The cores axis contains a zero — a machine needs at least one
    /// core.
    InvalidCores,
    /// A trace-backed task set met a multicore axis. Trace replay is
    /// single-core: the `arrival_ms task_id cycles` records name tasks
    /// of the whole prologue set, which a partition would split across
    /// cores with no defined record routing.
    TraceMulticore {
        /// The trace-backed set's name.
        set: String,
    },
    /// A precedence-constrained (DAG) task set has no periodic release
    /// pattern to run under: it is trace-backed, or the arrivals axis
    /// carries only generated (non-periodic) streams. The predecessor
    /// gate pairs jobs by instance index, which only the built-in
    /// periodic release grid defines.
    GraphArrivals {
        /// The DAG set's name.
        set: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EmptyAxes { axes } => {
                let hints: Vec<String> = axes
                    .iter()
                    .map(|axis| {
                        let method = match *axis {
                            "task_sets" => "CampaignBuilder::task_set",
                            "processors" => "CampaignBuilder::processor",
                            "policies" => "CampaignBuilder::policy",
                            "workloads" => "CampaignBuilder::workload",
                            other => other,
                        };
                        format!("`{axis}` (add one with `{method}`)")
                    })
                    .collect();
                write!(
                    f,
                    "campaign grid is empty: no entries on the {} {}",
                    if axes.len() == 1 { "axis" } else { "axes" },
                    hints.join(", ")
                )
            }
            CampaignError::ScheduleRequired { policy } => write!(
                f,
                "policy `{policy}` needs a schedule but the schedule axis \
                 contains only `Unscheduled`"
            ),
            CampaignError::DuplicateName { axis, name } => write!(
                f,
                "campaign axis `{axis}` contains the name `{name}` twice; \
                 report lookups match by name and would silently alias"
            ),
            CampaignError::InvalidCores => write!(
                f,
                "the cores axis contains 0; every machine needs at least one core"
            ),
            CampaignError::TraceMulticore { set } => write!(
                f,
                "task set `{set}` replays an arrival trace, but the cores axis \
                 contains counts above 1; trace replay is single-core only"
            ),
            CampaignError::GraphArrivals { set } => write!(
                f,
                "task set `{set}` carries a precedence graph, which requires \
                 the built-in periodic releases; drop the trace or keep \
                 `periodic` on the arrivals axis"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Sentinel for [`CellSpec::part`] on single-core cells (the
/// partitioner axis collapses: there is nothing to partition).
const NO_PART: usize = usize::MAX;

/// Sentinel for [`CellSpec::arrivals`] on trace-backed task sets (the
/// arrivals axis collapses: the trace *is* the arrival stream).
const NO_ARRIVALS: usize = usize::MAX;

/// One experiment cell before execution.
#[derive(Debug, Clone, Copy)]
struct CellSpec {
    set: usize,
    cpu: usize,
    /// Core count (the axis *value*, not an index).
    cores: usize,
    /// Index into the partitioners axis, or [`NO_PART`] when `cores == 1`
    /// or the cell dispatches globally (no partition either way).
    part: usize,
    /// How the cell maps jobs onto cores. Single-core cells always carry
    /// `Partitioned` (the axes coincide on one core).
    placement: Placement,
    /// Scheduling class the cell's dispatcher runs (the axis *value*).
    class: SchedulingClass,
    schedule: ScheduleChoice,
    policy: usize,
    workload: usize,
    /// Index into the arrivals axis, or [`NO_ARRIVALS`] when the cell's
    /// task set replays a trace.
    arrivals: usize,
}

/// Builder for [`Campaign`]: add at least one task set, processor,
/// policy and workload family, then [`build`](CampaignBuilder::build).
///
/// ```
/// use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
/// use acs_power::{FreqModel, Processor};
/// use acs_runtime::{Campaign, PolicySpec, ScheduleChoice, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let set = TaskSet::new(vec![Task::builder("t", Ticks::new(10))
/// #     .wcec(Cycles::from_cycles(300.0)).acec(Cycles::from_cycles(120.0))
/// #     .bcec(Cycles::from_cycles(30.0)).build()?])?;
/// # let cpu = Processor::builder(FreqModel::linear(50.0)?)
/// #     .vmin(Volt::from_volts(0.3)).vmax(Volt::from_volts(4.0)).build()?;
/// let campaign = Campaign::builder()
///     .task_set("ctrl", set)
///     .processor("linear", cpu)
///     .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
///     .policy(PolicySpec::greedy())
///     .policy(PolicySpec::ccrm()) // schedule-free: runs once, unscheduled
///     .workload(WorkloadSpec::Paper)
///     .seeds([1, 2, 3])
///     .build()?;
/// // greedy × {WCS, ACS} + ccrm × Unscheduled = 3 cells, ×3 seeds.
/// assert_eq!(campaign.cell_count(), 3);
/// assert_eq!(campaign.run_count(), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CampaignBuilder {
    task_sets: Vec<(String, TaskSet)>,
    /// Trace file path per trace-backed task set, keyed by index into
    /// `task_sets`.
    traces: HashMap<usize, String>,
    processors: Vec<(String, Processor)>,
    cores: Vec<usize>,
    placements: Vec<Placement>,
    partitioners: Vec<PartitionHeuristic>,
    classes: Vec<SchedulingClass>,
    arrivals: Vec<ArrivalKind>,
    schedules: Vec<ScheduleChoice>,
    policies: Vec<PolicySpec>,
    workloads: Vec<WorkloadSpec>,
    seeds: Vec<u64>,
    hyper_periods: u64,
    deadline_tol_ms: f64,
    synthesis: SynthesisOptions,
    acs_multistart: bool,
    threads: usize,
}

impl Default for CampaignBuilder {
    fn default() -> Self {
        CampaignBuilder {
            task_sets: Vec::new(),
            traces: HashMap::new(),
            processors: Vec::new(),
            cores: Vec::new(),
            placements: Vec::new(),
            partitioners: Vec::new(),
            classes: Vec::new(),
            arrivals: Vec::new(),
            schedules: Vec::new(),
            policies: Vec::new(),
            workloads: Vec::new(),
            seeds: Vec::new(),
            hyper_periods: 1,
            deadline_tol_ms: 1e-3,
            synthesis: SynthesisOptions::quick(),
            acs_multistart: false,
            threads: default_threads(),
        }
    }
}

impl CampaignBuilder {
    /// Adds one named task set to the grid.
    pub fn task_set(mut self, name: impl Into<String>, set: TaskSet) -> Self {
        self.task_sets.push((name.into(), set));
        self
    }

    /// Adds many named task sets.
    pub fn task_sets<I, N>(mut self, sets: I) -> Self
    where
        I: IntoIterator<Item = (N, TaskSet)>,
        N: Into<String>,
    {
        for (name, set) in sets {
            self.task_sets.push((name.into(), set));
        }
        self
    }

    /// Adds one named **trace-backed** task set: instead of the strictly
    /// periodic release grid, the cell replays the `acsched-trace v1`
    /// file at `path` (`set` must be the trace prologue's task set —
    /// `acs-scenario` trace declarations guarantee this by materializing
    /// the set *from* the prologue). Trace cells ignore
    /// the arrivals axis (the trace *is* the arrival stream; reported
    /// as `trace`), run until the trace is exhausted regardless of
    /// [`hyper_periods`](CampaignBuilder::hyper_periods), and are
    /// single-core only ([`build`](CampaignBuilder::build) rejects
    /// multicore grids containing a traced set). The file is re-streamed
    /// per run with bounded memory — multi-GB traces never load fully.
    pub fn task_set_traced(
        mut self,
        name: impl Into<String>,
        set: TaskSet,
        path: impl Into<String>,
    ) -> Self {
        self.traces.insert(self.task_sets.len(), path.into());
        self.task_sets.push((name.into(), set));
        self
    }

    /// Adds one arrival kind to the grid (default: `periodic` — the
    /// classic strictly periodic releases; grids that never touch this
    /// axis are byte-identical to pre-arrivals reports). Non-periodic
    /// kinds release jobs from deterministic seed-keyed generators
    /// ([`ArrivalKind::source`]), keyed per `(seed, set)` — per
    /// `(seed, set, core)` on multicore cells — so results are pure
    /// functions of the grid coordinates at any thread count. Duplicate
    /// kinds are dropped at [`build`](CampaignBuilder::build), keeping
    /// first positions (like seeds and cores).
    pub fn arrival(mut self, kind: ArrivalKind) -> Self {
        self.arrivals.push(kind);
        self
    }

    /// Replaces the arrivals axis.
    pub fn arrivals(mut self, kinds: impl IntoIterator<Item = ArrivalKind>) -> Self {
        self.arrivals = kinds.into_iter().collect();
        self
    }

    /// Adds one named processor to the grid.
    pub fn processor(mut self, name: impl Into<String>, cpu: Processor) -> Self {
        self.processors.push((name.into(), cpu));
        self
    }

    /// Replaces the core-count axis (default `[1]` — the classic
    /// single-processor runs). Each entry `n > 1` partitions every task
    /// set onto `n` identical cores (one per partitioner on the
    /// partitioner axis) and runs the single-core engine per core.
    /// Duplicate counts are dropped, keeping first positions (like
    /// seeds).
    pub fn cores(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.cores = counts.into_iter().collect();
        self
    }

    /// Adds one placement to the grid (default: `Partitioned` — the
    /// classic pin-then-run machine runs). The axis only multiplies
    /// cells with `cores > 1`: on one core partitioned and global
    /// dispatch coincide, so single-core cells run once. `Global` cells
    /// share one ready queue across the cores; they collapse the
    /// partitioner axis, run schedule-free policies only (the static
    /// schedules are per-core artifacts), and stick to the built-in
    /// periodic releases. Duplicate placements are dropped at
    /// [`build`](CampaignBuilder::build), keeping first positions.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placements.push(placement);
        self
    }

    /// Replaces the placement axis.
    pub fn placements(mut self, placements: impl IntoIterator<Item = Placement>) -> Self {
        self.placements = placements.into_iter().collect();
        self
    }

    /// Adds one partitioning heuristic to the grid (default:
    /// first-fit decreasing). The axis only multiplies cells with
    /// `cores > 1`; single-core cells have nothing to partition and run
    /// once.
    pub fn partitioner(mut self, heuristic: PartitionHeuristic) -> Self {
        self.partitioners.push(heuristic);
        self
    }

    /// Replaces the partitioner axis.
    pub fn partitioners(
        mut self,
        heuristics: impl IntoIterator<Item = PartitionHeuristic>,
    ) -> Self {
        self.partitioners = heuristics.into_iter().collect();
        self
    }

    /// Adds one scheduling class to the grid (default: fixed-priority
    /// RM, the classic runs). Every other axis — policies, schedules,
    /// cores, partitioners, workloads, seeds — multiplies against it;
    /// offline synthesis and draw streams are shared across classes, so
    /// RM-vs-EDF cells are exactly paired. Duplicate classes are
    /// dropped at [`build`](CampaignBuilder::build), keeping first
    /// positions (like seeds and cores).
    pub fn class(mut self, class: SchedulingClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Replaces the scheduling-class axis.
    pub fn classes(mut self, classes: impl IntoIterator<Item = SchedulingClass>) -> Self {
        self.classes = classes.into_iter().collect();
        self
    }

    /// Adds one schedule choice to the grid.
    pub fn schedule(mut self, choice: ScheduleChoice) -> Self {
        self.schedules.push(choice);
        self
    }

    /// Replaces the schedule axis.
    pub fn schedules(mut self, choices: impl IntoIterator<Item = ScheduleChoice>) -> Self {
        self.schedules = choices.into_iter().collect();
        self
    }

    /// Adds one policy to the grid.
    pub fn policy(mut self, spec: PolicySpec) -> Self {
        self.policies.push(spec);
        self
    }

    /// Adds many policies.
    pub fn policies(mut self, specs: impl IntoIterator<Item = PolicySpec>) -> Self {
        self.policies.extend(specs);
        self
    }

    /// Adds one workload family to the grid.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Replaces the seed axis (one simulation per seed per cell).
    ///
    /// Duplicate seeds are removed at [`build`](CampaignBuilder::build)
    /// time, keeping the first occurrence's position: a repeated seed
    /// would re-run identical draws and silently skew the per-cell
    /// mean/p95 toward those runs.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Hyper-periods simulated per run (default 1).
    pub fn hyper_periods(mut self, n: u64) -> Self {
        self.hyper_periods = n.max(1);
        self
    }

    /// Deadline-miss tolerance in ms (default `1e-3`).
    pub fn deadline_tol_ms(mut self, tol: f64) -> Self {
        self.deadline_tol_ms = tol;
        self
    }

    /// Synthesis options for the WCS/ACS schedules (default
    /// [`SynthesisOptions::quick`]).
    pub fn synthesis(mut self, options: SynthesisOptions) -> Self {
        self.synthesis = options;
        self
    }

    /// Uses multi-start ACS synthesis (`synthesize_acs_best`) instead of
    /// a single warm-started solve.
    pub fn acs_multistart(mut self, on: bool) -> Self {
        self.acs_multistart = on;
        self
    }

    /// Worker-thread count (default: available parallelism). The report
    /// does not depend on this.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Validates the axes and assembles the campaign.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptyAxes`] when required axes are empty — the
    /// error names *every* missing axis, not just the first (the
    /// schedule axis defaults to `[Unscheduled, Wcs, Acs]` filtered to
    /// what the policies can use; seeds default to `[0]`);
    /// [`CampaignError::ScheduleRequired`] when a schedule-dependent
    /// policy meets a schedule axis without `Wcs`/`Acs`;
    /// [`CampaignError::DuplicateName`] when two entries on one axis
    /// share a name.
    pub fn build(mut self) -> Result<Campaign, CampaignError> {
        let missing: Vec<&'static str> = [
            ("task_sets", self.task_sets.is_empty()),
            ("processors", self.processors.is_empty()),
            ("policies", self.policies.is_empty()),
            ("workloads", self.workloads.is_empty()),
        ]
        .into_iter()
        .filter_map(|(axis, empty)| empty.then_some(axis))
        .collect();
        if !missing.is_empty() {
            return Err(CampaignError::EmptyAxes { axes: missing });
        }
        // Reports pair and look up cells by name; a repeated name on any
        // axis would make those lookups silently alias distinct cells.
        let mut seen = std::collections::HashSet::new();
        for (axis, names) in [
            (
                "task_sets",
                self.task_sets
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>(),
            ),
            (
                "processors",
                self.processors.iter().map(|(n, _)| n.clone()).collect(),
            ),
            (
                "policies",
                self.policies.iter().map(|p| p.name().to_string()).collect(),
            ),
            (
                "workloads",
                self.workloads.iter().map(WorkloadSpec::name).collect(),
            ),
        ] {
            seen.clear();
            for name in names {
                if !seen.insert(name.clone()) {
                    return Err(CampaignError::DuplicateName { axis, name });
                }
            }
        }
        // Duplicate seeds would re-run identical draws and skew the
        // per-cell mean/p95 toward them; drop repeats, keeping first
        // positions (documented on `CampaignBuilder::seeds`).
        let mut seen_seeds = std::collections::HashSet::new();
        self.seeds.retain(|s| seen_seeds.insert(*s));
        if self.seeds.is_empty() {
            self.seeds.push(0);
        }
        if self.cores.contains(&0) {
            return Err(CampaignError::InvalidCores);
        }
        let mut seen_cores = std::collections::HashSet::new();
        self.cores.retain(|c| seen_cores.insert(*c));
        if self.cores.is_empty() {
            self.cores.push(1);
        }
        // Duplicate placements would re-run identical cells; drop
        // repeats, keeping first positions (documented on
        // `CampaignBuilder::placement`).
        let mut seen_placements = std::collections::HashSet::new();
        self.placements.retain(|p| seen_placements.insert(*p));
        if self.placements.is_empty() {
            self.placements.push(Placement::Partitioned);
        }
        // Duplicate classes would re-run identical cells under identical
        // draws; drop repeats, keeping first positions (documented on
        // `CampaignBuilder::class`).
        let mut seen_classes = std::collections::HashSet::new();
        self.classes.retain(|c| seen_classes.insert(*c));
        if self.classes.is_empty() {
            self.classes.push(SchedulingClass::FixedPriorityRm);
        }
        // Duplicate arrival kinds would re-run identical release streams;
        // drop repeats, keeping first positions (documented on
        // `CampaignBuilder::arrival`).
        let mut seen_arrivals = std::collections::HashSet::new();
        self.arrivals.retain(|a| seen_arrivals.insert(*a));
        if self.arrivals.is_empty() {
            self.arrivals.push(ArrivalKind::Periodic);
        }
        if self.cores.iter().any(|c| *c > 1) {
            if let Some(idx) = self.traces.keys().min() {
                return Err(CampaignError::TraceMulticore {
                    set: self.task_sets[*idx].0.clone(),
                });
            }
        }
        // Precedence-constrained sets pair jobs by instance index, which
        // only the built-in periodic release grid defines: a DAG set
        // that is trace-backed, or whose arrivals axis offers no
        // periodic kind at all, has nothing it can run under.
        let any_periodic = self.arrivals.iter().any(|a| a.is_periodic());
        for (idx, (name, set)) in self.task_sets.iter().enumerate() {
            if set.graph().is_some_and(|g| !g.is_empty())
                && (self.traces.contains_key(&idx) || !any_periodic)
            {
                return Err(CampaignError::GraphArrivals { set: name.clone() });
            }
        }
        seen.clear();
        for h in &self.partitioners {
            if !seen.insert(h.label().to_string()) {
                return Err(CampaignError::DuplicateName {
                    axis: "partitioners",
                    name: h.label().to_string(),
                });
            }
        }
        if self.partitioners.is_empty() {
            self.partitioners
                .push(PartitionHeuristic::FirstFitDecreasing);
        }
        if self.schedules.is_empty() {
            let any_unscheduled = self.policies.iter().any(|p| !p.needs_schedule());
            let any_scheduled = self.policies.iter().any(|p| p.needs_schedule());
            if any_unscheduled {
                self.schedules.push(ScheduleChoice::Unscheduled);
            }
            if any_scheduled {
                self.schedules.push(ScheduleChoice::Wcs);
                self.schedules.push(ScheduleChoice::Acs);
            }
        }
        let has_scheduled = self
            .schedules
            .iter()
            .any(|c| *c != ScheduleChoice::Unscheduled);
        for p in &self.policies {
            if p.needs_schedule() && !has_scheduled {
                return Err(CampaignError::ScheduleRequired {
                    policy: p.name().to_string(),
                });
            }
        }

        // Cartesian grid. Policies that ignore schedules run exactly once
        // per (set, cpu, cores, partitioner, workload) — as
        // `Unscheduled` — regardless of the schedule axis, so the grid
        // never duplicates physically identical runs; schedule-dependent
        // policies skip `Unscheduled`. The partitioner axis likewise
        // collapses on single-core cells: with one core there is nothing
        // to partition. The placement axis collapses there too, and
        // global multicore cells collapse the partitioner axis in turn
        // while skipping schedule-backed policies (static schedules are
        // per-core artifacts a shared queue cannot honor) and
        // non-periodic arrival kinds (global dispatch runs the built-in
        // release grid). DAG sets skip partitioned multicore cells:
        // precedence edges cannot cross a partition.
        let mut cells = Vec::new();
        for set in 0..self.task_sets.len() {
            let has_graph = self.task_sets[set].1.graph().is_some_and(|g| !g.is_empty());
            for cpu in 0..self.processors.len() {
                for &cores in &self.cores {
                    let placements: Vec<Placement> = if cores == 1 {
                        vec![Placement::Partitioned]
                    } else {
                        self.placements.clone()
                    };
                    for placement in placements {
                        let global = cores > 1 && placement == Placement::Global;
                        if cores > 1 && placement == Placement::Partitioned && has_graph {
                            continue;
                        }
                        let parts: Vec<usize> = if cores == 1 || global {
                            vec![NO_PART]
                        } else {
                            (0..self.partitioners.len()).collect()
                        };
                        for part in parts {
                            for &class in &self.classes {
                                for (policy_idx, policy) in self.policies.iter().enumerate() {
                                    if global && policy.needs_schedule() {
                                        continue;
                                    }
                                    let choices: Vec<ScheduleChoice> = if policy.needs_schedule() {
                                        self.schedules
                                            .iter()
                                            .copied()
                                            .filter(|c| *c != ScheduleChoice::Unscheduled)
                                            .collect()
                                    } else {
                                        vec![ScheduleChoice::Unscheduled]
                                    };
                                    for schedule in choices {
                                        for workload in 0..self.workloads.len() {
                                            // The arrivals axis collapses on
                                            // trace-backed sets: the trace
                                            // fixes the release stream. DAG
                                            // and global cells run only the
                                            // built-in periodic releases.
                                            let periodic_only = has_graph || global;
                                            let kinds: Vec<usize> =
                                                if self.traces.contains_key(&set) {
                                                    vec![NO_ARRIVALS]
                                                } else {
                                                    (0..self.arrivals.len())
                                                        .filter(|&a| {
                                                            !periodic_only
                                                                || self.arrivals[a].is_periodic()
                                                        })
                                                        .collect()
                                                };
                                            for arrivals in kinds {
                                                cells.push(CellSpec {
                                                    set,
                                                    cpu,
                                                    cores,
                                                    part,
                                                    placement,
                                                    class,
                                                    schedule,
                                                    policy: policy_idx,
                                                    workload,
                                                    arrivals,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Campaign {
            builder: self,
            cells,
        })
    }
}

/// A validated experiment grid, ready to [`run`](Campaign::run).
#[derive(Debug)]
pub struct Campaign {
    builder: CampaignBuilder,
    cells: Vec<CellSpec>,
}

impl Campaign {
    /// Starts a new builder.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }

    /// Number of grid cells (each runs once per seed).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of simulator runs the campaign will execute.
    pub fn run_count(&self) -> usize {
        self.cells.len() * self.builder.seeds.len()
    }

    /// Executes the grid in parallel and aggregates the report.
    ///
    /// Thin wrapper over [`run_with`](Campaign::run_with) driving an
    /// [`AggregateSink`] — the streaming and the materialized paths are
    /// the same code, so their results are identical by construction.
    pub fn run(&self) -> CampaignReport {
        let mut sink = AggregateSink::new();
        self.run_with(&mut sink)
            .expect("in-memory aggregation cannot fail");
        sink.into_report()
    }

    /// Executes the grid in parallel, streaming one [`CellRecord`] per
    /// grid cell into `sink` while later cells are still running.
    ///
    /// Records arrive in deterministic grid order regardless of the
    /// worker-thread count: cell `i` is delivered as soon as every seed
    /// of every cell `≤ i` has finished simulating. Synthesis or
    /// simulation failures are recorded per cell (see
    /// [`CellReport::outcome`]); they never abort the rest of the grid.
    ///
    /// Execution is two parallel phases with a barrier between them:
    /// all schedule synthesis first ([`Campaign::plan`]), then all
    /// simulation runs (streamed via [`Campaign::run_range_with`] over
    /// the whole grid). The barrier costs wall-clock on lopsided grids
    /// (one slow solve holds back even unscheduled cells) — acceptable
    /// today because synthesis jobs are deduplicated and typically
    /// dominate; a dependency-aware queue can replace it without
    /// changing the deterministic record order.
    ///
    /// # Errors
    ///
    /// Only sink errors (e.g. a full disk under a
    /// [`CsvSink`](crate::sink::CsvSink)) abort the campaign and are
    /// returned; the in-memory sinks never fail.
    pub fn run_with(&self, sink: &mut dyn ResultSink) -> std::io::Result<()> {
        let plans = self.plan();
        let n_seeds = self.builder.seeds.len();
        sink.on_begin(&CampaignMeta {
            cells: self.cells.len(),
            runs: self.cells.len() * n_seeds,
            seeds: n_seeds,
        })?;
        self.run_range_with(&plans, 0..self.cells.len(), self.builder.threads, sink)?;
        sink.on_end()
    }

    /// Phase 1 — synthesizes every schedule and partition the grid
    /// needs, in parallel, deduplicated per
    /// `(set, cpu, cores, partitioner, class)` and across
    /// synthesis-equivalent processors.
    ///
    /// The result owns all of its data and is independent of `self`'s
    /// lifetime, so callers can cache it (e.g. behind an [`Arc`]) and
    /// replay it against *any* campaign built from the same axes — the
    /// campaign server keys plans by scenario content hash for exactly
    /// this. [`Campaign::run_range_with`] checks a structural signature
    /// and rejects plans from a different grid.
    pub fn plan(&self) -> CampaignPlans {
        let b = &self.builder;
        // A plan is the partition (multicore cells only) plus the
        // per-core WCS — and, when some cell needs it, ACS — schedules,
        // synthesized on the class-tagged set: the fully preemptive
        // expansion orders segments by the scheduling class, so EDF
        // cells get EDF-consistent milestones. Single-core unscheduled
        // cells need no plan at all.
        let mut needs: std::collections::BTreeMap<PlanKey, PlanNeeds> =
            std::collections::BTreeMap::new();
        for cell in &self.cells {
            let scheduled = cell.schedule != ScheduleChoice::Unscheduled;
            // Global cells are always unscheduled (the grid skips
            // schedule-backed policies there) and never partition, so
            // they need no plan at all — like single-core unscheduled
            // cells.
            if !scheduled && (cell.cores == 1 || cell.placement == Placement::Global) {
                continue;
            }
            let e = needs
                .entry((cell.set, cell.cpu, cell.cores, cell.part, cell.class))
                .or_insert((false, false));
            e.0 |= scheduled;
            e.1 |= cell.schedule == ScheduleChoice::Acs;
        }
        let mut keys: Vec<(PlanKey, PlanNeeds)> = needs.into_iter().collect();
        // Synthesis-equivalent processors share one plan per (set,
        // cores, partitioner, class): same frequency law and voltage
        // range ⇒ same f_max ⇒ same partition and same solves.
        // `canon[i]` points at the representative; merged needs land on
        // it.
        let mut canon: Vec<usize> = (0..keys.len()).collect();
        for i in 0..keys.len() {
            let ((set_i, cpu_i, cores_i, part_i, class_i), _) = keys[i];
            if let Some(j) = (0..i).find(|&j| {
                let ((set_j, cpu_j, cores_j, part_j, class_j), _) = keys[j];
                canon[j] == j
                    && set_j == set_i
                    && cores_j == cores_i
                    && part_j == part_i
                    && class_j == class_i
                    && synthesis_equivalent(&b.processors[cpu_j].1, &b.processors[cpu_i].1)
            }) {
                canon[i] = j;
                let (w, a) = keys[i].1;
                keys[j].1 .0 |= w;
                keys[j].1 .1 |= a;
            }
        }
        let jobs: Vec<usize> = (0..keys.len()).filter(|&i| canon[i] == i).collect();
        let slot_of: HashMap<usize, usize> = jobs
            .iter()
            .enumerate()
            .map(|(slot, &i)| (i, slot))
            .collect();
        let plans: Vec<CellPlan> = parallel_map(jobs.len(), b.threads, |slot| {
            let ((set_idx, cpu_idx, cores, part, class), (needs_wcs, needs_acs)) = keys[jobs[slot]];
            let set = b.task_sets[set_idx].1.clone().with_class(class);
            let cpu = &b.processors[cpu_idx].1;
            let parted = (cores > 1).then(|| {
                partition(&set, cpu.f_max(), cores, b.partitioners[part]).map_err(|e| e.to_string())
            });
            // The task sets schedules are synthesized on: the whole set
            // on one core, each non-empty core's set otherwise (core
            // sets inherit the class from the partitioned set).
            let mut core_sets: Vec<&TaskSet> = Vec::new();
            match &parted {
                None => core_sets.push(&set),
                Some(Ok(p)) => core_sets.extend(p.cores.iter().filter_map(|c| c.set.as_ref())),
                Some(Err(_)) => {}
            }
            let wcs: Option<Result<Vec<StaticSchedule>, String>> = needs_wcs.then(|| {
                if let Some(Err(e)) = &parted {
                    return Err(format!("partition: {e}"));
                }
                core_sets
                    .iter()
                    .map(|s| synthesize_wcs(s, cpu, &b.synthesis).map_err(|e| e.to_string()))
                    .collect()
            });
            let acs = match (&wcs, needs_acs) {
                (Some(Ok(wcs_all)), true) => Some(
                    core_sets
                        .iter()
                        .zip(wcs_all)
                        .map(|(s, w)| {
                            let solved = if b.acs_multistart {
                                synthesize_acs_best(s, cpu, &b.synthesis, w)
                            } else {
                                synthesize_acs_warm(s, cpu, &b.synthesis, w)
                            };
                            solved.map_err(|e| e.to_string())
                        })
                        .collect::<Result<Vec<_>, String>>(),
                ),
                (Some(Err(e)), true) => Some(Err(e.clone())),
                _ => None,
            };
            CellPlan {
                partition: parted,
                wcs,
                acs,
            }
        });
        CampaignPlans {
            keys,
            canon,
            slot_of,
            plans,
            cells: self.cells.len(),
            runs: self.cells.len() * b.seeds.len(),
        }
    }

    /// Phase 2 for a contiguous sub-range of grid cells: runs every seed
    /// of cells `range.start..range.end` and streams their records —
    /// `index` still the *global* grid index — into `sink`, in order.
    ///
    /// Unlike [`Campaign::run_with`] this calls neither `on_begin` nor
    /// `on_end`: the caller owns the framing, so a campaign can be
    /// executed as many independent chunks (possibly interleaved with
    /// replayed chunks, as the campaign server does on resume) while the
    /// concatenated record stream stays byte-identical to one
    /// uninterrupted run — per-run draw streams are keyed by
    /// `(seed, set, core)`, never by thread or chunk placement.
    ///
    /// # Errors
    ///
    /// Sink errors abort the range and are returned, as in `run_with`;
    /// additionally `InvalidInput` when `plans` was built from a
    /// different grid (cell/run counts differ) or `range` exceeds the
    /// grid.
    pub fn run_range_with(
        &self,
        plans: &CampaignPlans,
        range: std::ops::Range<usize>,
        threads: usize,
        sink: &mut dyn ResultSink,
    ) -> std::io::Result<()> {
        let b = &self.builder;
        if plans.cells != self.cells.len() || plans.runs != self.run_count() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "campaign plans were built for a different grid \
                     ({} cells / {} runs, campaign has {} / {})",
                    plans.cells,
                    plans.runs,
                    self.cells.len(),
                    self.run_count()
                ),
            ));
        }
        if range.end > self.cells.len() || range.start > range.end {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "cell range {}..{} out of bounds for {} cells",
                    range.start,
                    range.end,
                    self.cells.len()
                ),
            ));
        }
        // Run results arrive in index order; a cell's record is emitted
        // the moment its last seed lands, while later cells keep
        // simulating on the workers.
        let n_seeds = b.seeds.len();
        let n_runs = range.len() * n_seeds;
        let mut seed_buf: Vec<Result<(SimReport, Vec<f64>), String>> = Vec::with_capacity(n_seeds);
        parallel_for_in_order(
            n_runs,
            threads,
            |i| {
                let cell = &self.cells[range.start + i / n_seeds];
                let seed = b.seeds[i % n_seeds];
                let set = &b.task_sets[cell.set].1;
                let cpu = &b.processors[cell.cpu].1;
                let spec = &b.workloads[cell.workload];
                let options = SimOptions {
                    // A trace bounds its own horizon: the run ends when
                    // the source exhausts, not at a hyper-period count.
                    hyper_periods: if cell.arrivals == NO_ARRIVALS {
                        u64::MAX
                    } else {
                        b.hyper_periods
                    },
                    deadline_tol_ms: b.deadline_tol_ms,
                    record_trace: false,
                    class: Some(cell.class),
                };
                let schedules = plans.schedules_of(cell)?;
                if cell.cores == 1 {
                    // Mix only the set index into the draw seed: cells
                    // that differ in schedule/policy/processor see
                    // identical draws, so comparisons across those axes
                    // are paired.
                    let mut draws =
                        TaskWorkloads::from_dists(spec.dists(set), mix_seed(seed, cell.set));
                    let mut sim = Simulator::new(set, cpu, b.policies[cell.policy].instantiate())
                        .with_options(options);
                    if let Some(s) = schedules {
                        sim = sim.with_schedule(&s[0]);
                    }
                    if cell.arrivals == NO_ARRIVALS {
                        let path = b
                            .traces
                            .get(&cell.set)
                            .expect("NO_ARRIVALS marks trace-backed cells");
                        let source = TraceSource::open(path).map_err(|e| format!("trace: {e}"))?;
                        sim = sim.with_arrivals(Box::new(source));
                    } else {
                        let kind = b.arrivals[cell.arrivals];
                        // Periodic cells get *no* source: they run the
                        // built-in release grid, byte-identical to grids
                        // without an arrivals axis. Generated sources
                        // share the (seed, set) key with the workload
                        // draws, so arrival streams pair across
                        // schedule/policy/processor cells too.
                        if !kind.is_periodic() {
                            sim = sim.with_arrivals(kind.source(set, mix_seed(seed, cell.set)));
                        }
                    }
                    sim.run_source(&mut draws)
                        .map(|out| {
                            let energy = out.report.energy.as_units();
                            (out.report, vec![energy])
                        })
                        .map_err(|e| e.to_string())
                } else if cell.placement == Placement::Global {
                    // One shared draw stream keyed (seed, set), exactly
                    // like single-core cells: GlobalRun draws task-major
                    // per hyper-period — the single-core engine's order —
                    // so global cells pair with their single-core twins
                    // and with partitioned cells across every other axis.
                    let mut draws =
                        TaskWorkloads::from_dists(spec.dists(set), mix_seed(seed, cell.set));
                    GlobalRun {
                        set,
                        cpu,
                        cores: cell.cores,
                        options,
                    }
                    .run_source(b.policies[cell.policy].instantiate(), &mut draws)
                    .map(|out| {
                        let per_core: Vec<f64> = out
                            .report
                            .per_core_energy()
                            .iter()
                            .map(|e| e.as_units())
                            .collect();
                        (out.report.to_sim_report(), per_core)
                    })
                    .map_err(|e| e.to_string())
                } else {
                    let plan = plans.plan_of(cell).expect("multicore cells are planned");
                    let parted = match plan.partition.as_ref().expect("multicore plans partition") {
                        Ok(p) => p,
                        Err(e) => return Err(format!("partition: {e}")),
                    };
                    // Multicore cells are never trace-backed (rejected at
                    // build), so the arrivals index is always real.
                    let kind = b.arrivals[cell.arrivals];
                    MachineRun {
                        partition: parted,
                        cpu,
                        schedules,
                        options,
                    }
                    .run_batched(
                        || b.policies[cell.policy].instantiate(),
                        // Independent per-core batched draw streams,
                        // keyed by (seed, set, core): deterministic at
                        // any thread count, paired across schedules and
                        // policies, byte-identical to per-job draws of
                        // the same streams.
                        |core, core_set| {
                            TaskWorkloads::from_dists(
                                spec.dists(core_set),
                                mix_seed(mix_seed(seed, cell.set), core),
                            )
                        },
                        &mut |core, core_set| {
                            // Per-core sources keyed (seed, set, core),
                            // mirroring the per-core draw streams.
                            (!kind.is_periodic()).then(|| {
                                kind.source(core_set, mix_seed(mix_seed(seed, cell.set), core))
                            })
                        },
                    )
                    .map(|m| {
                        let per_core: Vec<f64> =
                            m.per_core_energy().iter().map(|e| e.as_units()).collect();
                        (m.to_sim_report(), per_core)
                    })
                    .map_err(|e| e.to_string())
                }
            },
            |i, result| {
                seed_buf.push(result);
                if seed_buf.len() < n_seeds {
                    return Ok(());
                }
                let c = range.start + i / n_seeds;
                let cell = &self.cells[c];
                let outcome = aggregate(&seed_buf);
                seed_buf.clear();
                sink.on_record(&CellRecord {
                    index: c,
                    cell: CellReport {
                        task_set: b.task_sets[cell.set].0.clone(),
                        processor: b.processors[cell.cpu].0.clone(),
                        cores: cell.cores,
                        partition: if cell.part == NO_PART {
                            "-".to_string()
                        } else {
                            b.partitioners[cell.part].label().to_string()
                        },
                        placement: if cell.cores == 1 {
                            "-".to_string()
                        } else {
                            cell.placement.label().to_string()
                        },
                        class: cell.class,
                        schedule: cell.schedule,
                        policy: b.policies[cell.policy].name().to_string(),
                        workload: b.workloads[cell.workload].name(),
                        arrivals: if cell.arrivals == NO_ARRIVALS {
                            "trace".to_string()
                        } else {
                            b.arrivals[cell.arrivals].label().to_string()
                        },
                        outcome,
                    },
                })
            },
        )
    }
}

/// `(set, cpu, cores, partitioner-index, class)` — the sharing unit of
/// phase-1 planning.
type PlanKey = (usize, usize, usize, usize, SchedulingClass);
/// `(needs schedules at all, needs ACS)`.
type PlanNeeds = (bool, bool);

/// The owned output of [`Campaign::plan`]: every partition and static
/// schedule the grid needs, deduplicated and addressable per cell.
///
/// Opaque by design — build one with [`Campaign::plan`], hand it (by
/// reference, possibly from an [`Arc`]) to
/// [`Campaign::run_range_with`]. Because plans are pure functions of
/// the campaign axes, a plan computed once can back any number of later
/// campaigns built from the same axes; `run_range_with` validates the
/// structural signature and rejects mismatched grids.
pub struct CampaignPlans {
    keys: Vec<(PlanKey, PlanNeeds)>,
    canon: Vec<usize>,
    slot_of: HashMap<usize, usize>,
    plans: Vec<CellPlan>,
    /// Structural signature: the grid these plans were computed for.
    cells: usize,
    runs: usize,
}

impl std::fmt::Debug for CampaignPlans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignPlans")
            .field("plan_keys", &self.keys.len())
            .field("synthesized", &self.plans.len())
            .field("cells", &self.cells)
            .field("runs", &self.runs)
            .finish_non_exhaustive()
    }
}

impl CampaignPlans {
    /// Number of deduplicated synthesis jobs actually run.
    pub fn synthesized(&self) -> usize {
        self.plans.len()
    }

    fn plan_of(&self, cell: &CellSpec) -> Option<&CellPlan> {
        if cell.schedule == ScheduleChoice::Unscheduled
            && (cell.cores == 1 || cell.placement == Placement::Global)
        {
            return None;
        }
        let pos = self
            .keys
            .binary_search_by_key(
                &(cell.set, cell.cpu, cell.cores, cell.part, cell.class),
                |(k, _)| *k,
            )
            .expect("every planned cell has a slot");
        Some(&self.plans[self.slot_of[&self.canon[pos]]])
    }

    fn schedules_of(&self, cell: &CellSpec) -> Result<Option<&[StaticSchedule]>, String> {
        match cell.schedule {
            ScheduleChoice::Unscheduled => Ok(None),
            kind => {
                let plan = self.plan_of(cell).expect("scheduled cells are planned");
                let solved = match kind {
                    ScheduleChoice::Wcs => plan.wcs.as_ref(),
                    ScheduleChoice::Acs => plan.acs.as_ref(),
                    ScheduleChoice::Unscheduled => unreachable!(),
                }
                .expect("schedules synthesized for every scheduled cell");
                match solved {
                    Ok(v) => Ok(Some(v.as_slice())),
                    Err(e) if e.starts_with("partition: ") => Err(e.clone()),
                    Err(e) => Err(format!("synthesis: {e}")),
                }
            }
        }
    }
}

/// The shared per-(set, cpu, cores, partitioner) artifacts of phase 1:
/// the partition (multicore only) and the per-core schedules.
struct CellPlan {
    partition: Option<Result<Partition, String>>,
    wcs: Option<Result<Vec<StaticSchedule>, String>>,
    acs: Option<Result<Vec<StaticSchedule>, String>>,
}

/// `true` when two processors are interchangeable for *schedule
/// synthesis*: the synthesizer (`acs-core`) works on the continuous
/// frequency model over `[vmin, vmax]` and never consults discrete
/// level tables or transition overhead — those shape only the runtime.
/// Processor variants differing only there (the classic design-space
/// sweep) share one WCS/ACS solve per task set.
fn synthesis_equivalent(a: &Processor, b: &Processor) -> bool {
    a.freq_model() == b.freq_model() && a.vmin() == b.vmin() && a.vmax() == b.vmax()
}

/// Folds one cell's per-seed reports (machine report + per-core total
/// energies) into [`CellStats`]; the first failure poisons the cell.
fn aggregate(per_seed: &[Result<(SimReport, Vec<f64>), String>]) -> Result<CellStats, String> {
    let mut energies = Vec::with_capacity(per_seed.len());
    let mut stats = CellStats {
        runs: per_seed.len(),
        mean_energy: Energy::ZERO,
        std_energy: 0.0,
        p95_energy: Energy::ZERO,
        mean_dynamic_energy: Energy::ZERO,
        mean_static_energy: Energy::ZERO,
        mean_idle_energy: Energy::ZERO,
        per_core_mean_energy: Vec::new(),
        deadline_misses: 0,
        misses_aperiodic: 0,
        jobs_completed: 0,
        saturated_dispatches: 0,
        voltage_switches: 0,
        preemptions: 0,
        migrations: 0,
        clamped_draws: 0,
        worst_lateness_ms: 0.0,
        solver_lookups: 0,
        solver_cache_hits: 0,
        warm_carry_hits: 0,
        boundary_resolves: 0,
        resolves_adopted: 0,
    };
    let mut static_sum = 0.0f64;
    let mut idle_sum = 0.0f64;
    for r in per_seed {
        let (report, per_core) = r.as_ref().map_err(|e| e.clone())?;
        energies.push(report.energy.as_units());
        static_sum += report.static_energy.as_units();
        idle_sum += report.idle_energy.as_units();
        if stats.per_core_mean_energy.is_empty() {
            stats.per_core_mean_energy = vec![0.0; per_core.len()];
        }
        for (acc, e) in stats.per_core_mean_energy.iter_mut().zip(per_core) {
            *acc += e;
        }
        stats.deadline_misses += report.deadline_misses;
        stats.misses_aperiodic += report.misses_aperiodic;
        stats.jobs_completed += report.jobs_completed;
        stats.saturated_dispatches += report.saturated_dispatches;
        stats.voltage_switches += report.voltage_switches;
        stats.preemptions += report.preemptions;
        stats.migrations += report.migrations;
        stats.clamped_draws += report.clamped_draws;
        stats.worst_lateness_ms = stats.worst_lateness_ms.max(report.worst_lateness_ms);
        stats.solver_lookups += report.solver_lookups;
        stats.solver_cache_hits += report.solver_cache_hits;
        stats.warm_carry_hits += report.warm_carry_hits;
        stats.boundary_resolves += report.boundary_resolves;
        stats.resolves_adopted += report.resolves_adopted;
    }
    let n = energies.len() as f64;
    let mean = energies.iter().sum::<f64>() / n;
    let var = energies
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / (n - 1.0).max(1.0);
    let mut sorted = energies;
    sorted.sort_by(f64::total_cmp);
    let p95_idx = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    stats.mean_energy = Energy::from_units(mean);
    stats.std_energy = var.sqrt();
    stats.p95_energy = Energy::from_units(sorted[p95_idx]);
    stats.mean_static_energy = Energy::from_units(static_sum / n);
    stats.mean_idle_energy = Energy::from_units(idle_sum / n);
    stats.mean_dynamic_energy = Energy::from_units(mean - (static_sum + idle_sum) / n);
    for acc in &mut stats.per_core_mean_energy {
        *acc /= n;
    }
    Ok(stats)
}

/// SplitMix64-mixes the user seed with the task-set index, so every set
/// gets an independent, reproducible draw stream.
fn mix_seed(seed: u64, set_idx: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((set_idx as u64).wrapping_mul(0xD129_0793_66CA_8C21));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Cycles, Ticks, Volt};
    use acs_model::Task;
    use acs_power::FreqModel;

    fn small_set() -> TaskSet {
        TaskSet::new(vec![Task::builder("t", Ticks::new(10))
            .wcec(Cycles::from_cycles(300.0))
            .acec(Cycles::from_cycles(120.0))
            .bcec(Cycles::from_cycles(30.0))
            .build()
            .unwrap()])
        .unwrap()
    }

    fn cpu() -> Processor {
        Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_axes_rejected_and_all_named() {
        // A fresh builder names every missing axis, not just the first.
        let err = Campaign::builder().build().unwrap_err();
        assert_eq!(
            err,
            CampaignError::EmptyAxes {
                axes: vec!["task_sets", "processors", "policies", "workloads"]
            }
        );
        let msg = err.to_string();
        for needle in [
            "`task_sets`",
            "`processors`",
            "`policies`",
            "`workloads`",
            "CampaignBuilder::policy",
        ] {
            assert!(msg.contains(needle), "missing {needle} in: {msg}");
        }
        // With only one axis missing, the message points at it alone.
        let err = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .workload(WorkloadSpec::Paper)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::EmptyAxes {
                axes: vec!["policies"]
            }
        );
        assert!(err.to_string().contains("axis `policies`"));
        assert!(!err.to_string().contains("task_sets"));
    }

    #[test]
    fn duplicate_seeds_deduped_preserving_order() {
        let campaign = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .seeds([5, 3, 5, 3, 7, 5])
            .build()
            .unwrap();
        assert_eq!(campaign.run_count(), 3, "seeds deduped to [5, 3, 7]");
        // The dedup keeps first positions: identical to declaring the
        // unique seeds outright.
        let clean = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .seeds([5, 3, 7])
            .build()
            .unwrap();
        assert_eq!(campaign.run().cells(), clean.run().cells());
    }

    #[test]
    fn duplicate_axis_names_rejected() {
        let err = Campaign::builder()
            .task_set("s", small_set())
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::DuplicateName {
                axis: "task_sets",
                name: "s".into()
            }
        );
        let err = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::greedy())
            .policy(PolicySpec::greedy())
            .workload(WorkloadSpec::Paper)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CampaignError::DuplicateName {
                axis: "policies",
                ..
            }
        ));
    }

    #[test]
    fn schedule_required_detected() {
        let err = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::greedy())
            .workload(WorkloadSpec::Paper)
            .schedule(ScheduleChoice::Unscheduled)
            .build()
            .unwrap_err();
        assert!(matches!(err, CampaignError::ScheduleRequired { .. }));
    }

    #[test]
    fn grid_dedupes_unscheduled_policies() {
        let campaign = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
            .policy(PolicySpec::no_dvs()) // schedule-free: 1 cell
            .policy(PolicySpec::greedy()) // scheduled: 2 cells
            .workload(WorkloadSpec::Paper)
            .seeds([1, 2, 3])
            .build()
            .unwrap();
        assert_eq!(campaign.cell_count(), 3);
        assert_eq!(campaign.run_count(), 9);
    }

    #[test]
    fn default_schedule_axis_covers_policy_needs() {
        let campaign = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::ccrm())
            .policy(PolicySpec::static_speed())
            .workload(WorkloadSpec::Paper)
            .build()
            .unwrap();
        // ccrm: Unscheduled; static: WCS + ACS.
        assert_eq!(campaign.cell_count(), 3);
    }

    #[test]
    fn workload_spec_instantiation() {
        let set = small_set();
        let t = &set.tasks()[0];
        assert_eq!(
            WorkloadSpec::ConstantWcec.dists(&set),
            vec![WorkloadDist::Constant(t.wcec().as_cycles())]
        );
        assert_eq!(
            WorkloadSpec::Bimodal { p_heavy: 0.25 }.name(),
            "bimodal(p=0.25)"
        );
        match &WorkloadSpec::Uniform.dists(&set)[0] {
            WorkloadDist::Uniform { lo, hi } => {
                assert_eq!(*lo, 30.0);
                assert_eq!(*hi, 300.0);
            }
            other => panic!("wrong dist {other:?}"),
        }
    }

    #[test]
    fn synthesis_equivalence_ignores_levels_and_overhead() {
        use acs_model::units::{Energy, TimeSpan};
        use acs_power::{LevelTable, TransitionOverhead};
        let base = cpu();
        let table = LevelTable::new(vec![
            Volt::from_volts(1.0),
            Volt::from_volts(2.0),
            Volt::from_volts(4.0),
        ])
        .unwrap();
        let discrete = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .build()
            .unwrap();
        let lossy = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .transition_overhead(TransitionOverhead {
                time: TimeSpan::from_ms(0.001),
                energy: Energy::from_units(1.0),
            })
            .build()
            .unwrap();
        let other_law = Processor::builder(FreqModel::linear(60.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        assert!(synthesis_equivalent(&base, &discrete));
        assert!(synthesis_equivalent(&base, &lossy));
        assert!(!synthesis_equivalent(&base, &other_law));

        // A grid over the three equivalent variants still reports one
        // cell per (processor, schedule) with distinct runtime energies
        // where the hardware differs.
        let report = Campaign::builder()
            .task_set("s", small_set())
            .processor("base", base)
            .processor("discrete", discrete)
            .processor("lossy", lossy)
            .schedules([ScheduleChoice::Wcs])
            .policy(PolicySpec::greedy())
            .workload(WorkloadSpec::ConstantAcec)
            .seeds([1])
            .build()
            .unwrap()
            .run();
        assert_eq!(report.cells().len(), 3);
        assert_eq!(report.failures().count(), 0, "{}", report.to_table());
        let energy = |cpu: &str| {
            report
                .find("s", cpu, ScheduleChoice::Wcs, "greedy", "acec")
                .unwrap()
                .stats()
                .unwrap()
                .mean_energy
                .as_units()
        };
        // Quantization rounds voltages up: strictly more energy than the
        // shared (identical) schedule costs on the continuous part.
        assert!(energy("discrete") > energy("base"));
    }

    #[test]
    fn cores_axis_multiplies_and_collapses_for_single_core() {
        let two = TaskSet::new(vec![
            Task::builder("x", Ticks::new(10))
                .wcec(Cycles::from_cycles(300.0))
                .acec(Cycles::from_cycles(120.0))
                .bcec(Cycles::from_cycles(30.0))
                .build()
                .unwrap(),
            Task::builder("y", Ticks::new(20))
                .wcec(Cycles::from_cycles(400.0))
                .acec(Cycles::from_cycles(160.0))
                .bcec(Cycles::from_cycles(40.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let campaign = Campaign::builder()
            .task_set("s", two.clone())
            .processor("p", cpu())
            .cores([1, 2])
            .partitioners([
                PartitionHeuristic::FirstFitDecreasing,
                PartitionHeuristic::WorstFitDecreasing,
            ])
            .schedules([ScheduleChoice::Wcs])
            .policy(PolicySpec::greedy())
            .workload(WorkloadSpec::Paper)
            .seeds([1, 2])
            .build()
            .unwrap();
        // cores=1 collapses the partitioner axis: 1 + 2 = 3 cells.
        assert_eq!(campaign.cell_count(), 3);
        let report = campaign.run();
        assert_eq!(report.failures().count(), 0, "{}", report.to_table());
        let labels: Vec<(usize, String)> = report
            .cells()
            .iter()
            .map(|c| (c.cores, c.partition.clone()))
            .collect();
        assert_eq!(
            labels,
            vec![
                (1, "-".to_string()),
                (2, "ffd".to_string()),
                (2, "wfd".to_string())
            ]
        );
        // Multicore cells report one mean energy per core; the machine
        // total is their sum.
        for c in report.cells().iter().filter(|c| c.cores == 2) {
            let s = c.stats().unwrap();
            assert_eq!(s.per_core_mean_energy.len(), 2);
            let sum: f64 = s.per_core_mean_energy.iter().sum();
            assert!((sum - s.mean_energy.as_units()).abs() < 1e-9, "{c:?}");
        }
        // Zero cores is rejected, duplicates are dropped.
        assert_eq!(
            Campaign::builder()
                .task_set("s", two.clone())
                .processor("p", cpu())
                .cores([0])
                .policy(PolicySpec::no_dvs())
                .workload(WorkloadSpec::Paper)
                .build()
                .unwrap_err(),
            CampaignError::InvalidCores
        );
        let deduped = Campaign::builder()
            .task_set("s", two)
            .processor("p", cpu())
            .cores([2, 2, 1, 2])
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .build()
            .unwrap();
        assert_eq!(deduped.cell_count(), 2);
    }

    #[test]
    fn placement_axis_adds_global_cells() {
        let two = TaskSet::new(vec![
            Task::builder("x", Ticks::new(10))
                .wcec(Cycles::from_cycles(300.0))
                .acec(Cycles::from_cycles(120.0))
                .bcec(Cycles::from_cycles(30.0))
                .build()
                .unwrap(),
            Task::builder("y", Ticks::new(20))
                .wcec(Cycles::from_cycles(400.0))
                .acec(Cycles::from_cycles(160.0))
                .bcec(Cycles::from_cycles(40.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let campaign = Campaign::builder()
            .task_set("s", two)
            .processor("p", cpu())
            .cores([1, 2])
            .placements([
                Placement::Partitioned,
                Placement::Global,
                Placement::Partitioned, // duplicates dedupe keep-first
            ])
            .schedules([ScheduleChoice::Wcs])
            .policy(PolicySpec::greedy())
            .policy(PolicySpec::ccrm())
            .workload(WorkloadSpec::Paper)
            .seeds([1, 2])
            .build()
            .unwrap();
        // cores=1 collapses the placement axis (2 cells); cores=2
        // partitioned runs both policies (2 cells); cores=2 global skips
        // the schedule-backed greedy (1 cell).
        assert_eq!(campaign.cell_count(), 5);
        let report = campaign.run();
        assert_eq!(report.failures().count(), 0, "{}", report.to_table());
        let coords: Vec<(usize, &str, &str)> = report
            .cells()
            .iter()
            .map(|c| (c.cores, c.placement.as_str(), c.policy.as_str()))
            .collect();
        assert_eq!(
            coords,
            vec![
                (1, "-", "greedy"),
                (1, "-", "ccrm"),
                (2, "partitioned", "greedy"),
                (2, "partitioned", "ccrm"),
                (2, "global", "ccrm"),
            ]
        );
        let global = report
            .cells()
            .iter()
            .find(|c| c.placement == "global")
            .unwrap();
        // Global cells collapse the partitioner axis and still report
        // one mean energy per core.
        assert_eq!(global.partition, "-");
        assert_eq!(global.stats().unwrap().per_core_mean_energy.len(), 2);
        // The table renders the placement in the cores column.
        assert!(
            report.to_table().contains("2:global"),
            "{}",
            report.to_table()
        );
        // No cell outside global dispatch ever migrates a job.
        for c in report.cells().iter().filter(|c| c.placement != "global") {
            assert_eq!(c.stats().unwrap().migrations, 0, "{c:?}");
        }
    }

    #[test]
    fn dag_sets_run_global_only() {
        use acs_model::TaskGraph;
        let tasks = vec![
            Task::builder("x", Ticks::new(10))
                .wcec(Cycles::from_cycles(300.0))
                .acec(Cycles::from_cycles(120.0))
                .bcec(Cycles::from_cycles(30.0))
                .build()
                .unwrap(),
            Task::builder("y", Ticks::new(10))
                .wcec(Cycles::from_cycles(400.0))
                .acec(Cycles::from_cycles(160.0))
                .bcec(Cycles::from_cycles(40.0))
                .build()
                .unwrap(),
        ];
        let plain = TaskSet::new(tasks).unwrap();
        let graph = TaskGraph::new(&plain, [("x", "y")]).unwrap();
        let dag = plain.with_graph(graph);
        let campaign = Campaign::builder()
            .task_set("dag", dag.clone())
            .processor("p", cpu())
            .cores([1, 2])
            .placements([Placement::Partitioned, Placement::Global])
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::ConstantWcec)
            .arrivals([ArrivalKind::Periodic, ArrivalKind::Sporadic])
            .build()
            .unwrap();
        // cores=1 (periodic only — DAG sets skip generated arrivals) and
        // cores=2 global; the partitioned multicore cell is skipped
        // because precedence edges cannot cross a partition.
        assert_eq!(campaign.cell_count(), 2);
        let report = campaign.run();
        assert_eq!(report.failures().count(), 0, "{}", report.to_table());
        assert!(report.cells().iter().all(|c| c.arrivals == "periodic"));
        // A DAG set with no periodic release pattern at all is rejected
        // up front.
        let err = Campaign::builder()
            .task_set("dag", dag)
            .processor("p", cpu())
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::ConstantWcec)
            .arrivals([ArrivalKind::Sporadic])
            .build()
            .unwrap_err();
        assert_eq!(err, CampaignError::GraphArrivals { set: "dag".into() });
        assert!(err.to_string().contains("precedence graph"), "{err}");
    }

    #[test]
    fn class_axis_multiplies_pairs_and_dedupes() {
        // Two classes double the grid; duplicates drop keeping first
        // positions; the default axis is [rm].
        let campaign = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .classes([
                SchedulingClass::FixedPriorityRm,
                SchedulingClass::Edf,
                SchedulingClass::FixedPriorityRm,
            ])
            .schedules([ScheduleChoice::Wcs])
            .policy(PolicySpec::greedy())
            .workload(WorkloadSpec::Paper)
            .seeds([1, 2])
            .build()
            .unwrap();
        assert_eq!(campaign.cell_count(), 2);
        let report = campaign.run();
        assert_eq!(report.failures().count(), 0, "{}", report.to_table());
        let classes: Vec<SchedulingClass> = report.cells().iter().map(|c| c.class).collect();
        assert_eq!(
            classes,
            vec![SchedulingClass::FixedPriorityRm, SchedulingClass::Edf]
        );
        // One task, one core: the classes see identical paired draws, so
        // the single-job-at-a-time schedule is identical too.
        let stats: Vec<_> = report.cells().iter().map(|c| c.stats().unwrap()).collect();
        assert_eq!(stats[0].mean_energy, stats[1].mean_energy);
        assert_eq!(stats[0].preemptions, stats[1].preemptions);

        let default = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .build()
            .unwrap();
        let report = default.run();
        assert!(report
            .cells()
            .iter()
            .all(|c| c.class == SchedulingClass::FixedPriorityRm));
    }

    #[test]
    fn duplicate_partitioners_rejected() {
        let err = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .partitioner(PartitionHeuristic::FirstFitDecreasing)
            .partitioner(PartitionHeuristic::FirstFitDecreasing)
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::DuplicateName {
                axis: "partitioners",
                name: "ffd".into()
            }
        );
    }

    #[test]
    fn infeasible_partition_fails_only_those_cells() {
        // One task at utilization ~0.94: fits one core, but a 2-core
        // FFD partition is fine too — so force infeasibility with a
        // task set whose *largest* task exceeds a core (util > 1 is
        // impossible per task at f_max 200 × ... use two tasks that
        // cannot split: total 1.5 on 1 core).
        let heavy = TaskSet::new(vec![
            Task::builder("h1", Ticks::new(10))
                .wcec(Cycles::from_cycles(1600.0))
                .build()
                .unwrap(),
            Task::builder("h2", Ticks::new(10))
                .wcec(Cycles::from_cycles(1400.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let report = Campaign::builder()
            .task_set("heavy", heavy)
            .processor("p", cpu())
            .cores([1, 2])
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::ConstantWcec)
            .build()
            .unwrap()
            .run();
        // util at fmax=200: 0.8 + 0.7 = 1.5 — runs (missing deadlines)
        // on one core, splits cleanly across two.
        assert_eq!(report.failures().count(), 0);
        // Now 3 cores with a single 8-core-infeasible... instead check
        // explicit infeasibility: a set that does not fit 2 cores.
        let over = TaskSet::new(vec![
            Task::builder("a", Ticks::new(10))
                .wcec(Cycles::from_cycles(1900.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(10))
                .wcec(Cycles::from_cycles(1900.0))
                .build()
                .unwrap(),
            Task::builder("c", Ticks::new(10))
                .wcec(Cycles::from_cycles(1900.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let report = Campaign::builder()
            .task_set("over", over)
            .processor("p", cpu())
            .cores([2])
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::ConstantWcec)
            .build()
            .unwrap()
            .run();
        assert_eq!(report.failures().count(), 1);
        let (_, msg) = report.failures().next().unwrap();
        assert!(msg.contains("partition:"), "{msg}");
        assert!(msg.contains("over-committed"), "{msg}");
    }

    #[test]
    fn chunked_ranges_reproduce_run_with_bytes() {
        use crate::sink::{CampaignMeta, CsvSink};
        let campaign = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
            .policy(PolicySpec::greedy())
            .policy(PolicySpec::ccrm())
            .workload(WorkloadSpec::Paper)
            .workload(WorkloadSpec::Uniform)
            .seeds([1, 2, 3])
            .build()
            .unwrap();
        let cells = campaign.cell_count();
        assert!(cells >= 5, "want several cells, got {cells}");
        let mut whole = CsvSink::new(Vec::new());
        campaign.run_with(&mut whole).unwrap();
        let whole = String::from_utf8(whole.into_inner()).unwrap();
        // Same grid as uneven chunks through run_range_with, with the
        // caller doing the framing — concatenation must be byte-equal.
        for chunk in [1, 2, cells] {
            let plans = campaign.plan();
            let mut sink = CsvSink::new(Vec::new());
            sink.on_begin(&CampaignMeta {
                cells,
                runs: campaign.run_count(),
                seeds: 3,
            })
            .unwrap();
            let mut lo = 0;
            while lo < cells {
                let hi = (lo + chunk).min(cells);
                campaign
                    .run_range_with(&plans, lo..hi, 2, &mut sink)
                    .unwrap();
                lo = hi;
            }
            sink.on_end().unwrap();
            let chunked = String::from_utf8(sink.into_inner()).unwrap();
            assert_eq!(whole, chunked, "chunk={chunk}");
        }
    }

    #[test]
    fn run_range_with_rejects_foreign_plans_and_bad_ranges() {
        use crate::sink::AggregateSink;
        let a = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .seeds([1])
            .build()
            .unwrap();
        let b = Campaign::builder()
            .task_set("s", small_set())
            .processor("p", cpu())
            .policy(PolicySpec::no_dvs())
            .workload(WorkloadSpec::Paper)
            .workload(WorkloadSpec::Uniform)
            .seeds([1])
            .build()
            .unwrap();
        let plans_b = b.plan();
        let mut sink = AggregateSink::new();
        let err = a.run_range_with(&plans_b, 0..1, 1, &mut sink).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("different grid"), "{err}");
        let plans_a = a.plan();
        let err = a.run_range_with(&plans_a, 0..2, 1, &mut sink).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn plans_from_equal_axes_are_interchangeable() {
        // The server caches plans by scenario hash and replays them
        // against freshly built campaigns: two `Campaign`s with equal
        // axes must accept each other's plans with identical results.
        let build = || {
            Campaign::builder()
                .task_set("s", small_set())
                .processor("p", cpu())
                .schedules([ScheduleChoice::Wcs])
                .policy(PolicySpec::greedy())
                .workload(WorkloadSpec::Paper)
                .seeds([1, 2])
                .build()
                .unwrap()
        };
        let first = build();
        let plans = first.plan();
        assert!(plans.synthesized() >= 1);
        let second = build();
        let mut direct = AggregateSink::new();
        second.run_with(&mut direct).unwrap();
        let mut via_cached = AggregateSink::new();
        second
            .run_range_with(&plans, 0..second.cell_count(), 1, &mut via_cached)
            .unwrap();
        assert_eq!(
            direct.into_report().cells(),
            via_cached.into_report().cells()
        );
    }

    #[test]
    fn mix_seed_separates_sets_deterministically() {
        assert_eq!(mix_seed(7, 0), mix_seed(7, 0));
        assert_ne!(mix_seed(7, 0), mix_seed(7, 1));
        assert_ne!(mix_seed(7, 0), mix_seed(8, 0));
    }
}
