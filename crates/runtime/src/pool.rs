//! Minimal scoped thread pool: an atomic work queue over an indexed
//! result vector. Results land at their input index, so callers see the
//! same output regardless of thread count or interleaving.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Sets the shared flag when dropped during a panic, so sibling workers
/// stop pulling new work instead of draining the queue before the panic
/// resurfaces from the scope join.
struct PoisonOnPanic<'a>(&'a AtomicBool);
impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// Runs `f(0..n)` across `threads` workers and collects the results in
/// index order. `f` must be safe to call concurrently from multiple
/// threads (it is `Sync`); each index is evaluated exactly once.
///
/// Panics in `f` propagate to the caller after all workers stop.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Mutex<Option<T>> rather than OnceLock<T>: the slot only needs
    // T: Send (each index is written once, by one worker), and
    // Mutex<T>: Sync does not require T: Sync.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Fail fast: a panicking worker poisons the queue so the survivors
    // stop instead of draining the remaining work before the panic
    // resurfaces from the scope join.
    let poisoned = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _guard = PoisonOnPanic(&poisoned);
                loop {
                    if poisoned.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("slot lock poisoned") = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker completed every index")
        })
        .collect()
}

/// Runs `f(0..n)` across `threads` workers and feeds every result to
/// `consume` **on the calling thread, in index order**, as soon as its
/// contiguous prefix is complete. Out-of-order results are buffered
/// until the gap before them fills — so `consume` observes exactly the
/// sequence `(0, f(0)), (1, f(1)), …` regardless of thread count or
/// interleaving, while the workers keep streaming ahead. This is the
/// substrate of the campaign's deterministic [`ResultSink`] delivery.
///
/// An `Err` from `consume` stops the workers early and is returned;
/// results already computed for later indices are discarded. Panics in
/// `f` propagate to the caller after all workers stop.
///
/// [`ResultSink`]: crate::sink::ResultSink
pub fn parallel_for_in_order<T, E, F, C>(
    n: usize,
    threads: usize,
    f: F,
    mut consume: C,
) -> Result<(), E>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T) -> Result<(), E>,
{
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            consume(i, f(i))?;
        }
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    let mut outcome = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let stop = &stop;
            let f = &f;
            scope.spawn(move || {
                let _guard = PoisonOnPanic(stop);
                loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A closed receiver means the consumer bailed out;
                    // stop producing.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut pending: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut cursor = 0;
        'deliver: while cursor < n {
            // A receive error means every sender is gone — either a
            // worker panicked (the scope join below re-raises it) or all
            // work is done and delivered.
            let Ok((i, value)) = rx.recv() else {
                break;
            };
            pending[i] = Some(value);
            while cursor < n {
                let Some(value) = pending[cursor].take() else {
                    break;
                };
                if let Err(e) = consume(cursor, value) {
                    stop.store(true, Ordering::SeqCst);
                    outcome = Err(e);
                    break 'deliver;
                }
                cursor += 1;
            }
        }
        drop(rx);
    });
    outcome
}

/// [`parallel_for_in_order`] with a bound on how far the workers may run
/// ahead of the consumer: index `i` is not *started* until fewer than
/// `max_in_flight` indices separate it from the last consumed one
/// (`i < consumed + max_in_flight`). This is the backpressure primitive
/// for slow consumers — a stalled sink (e.g. a client that stops
/// reading its socket) stalls the workers instead of letting completed
/// results pile up in the unbounded pending buffer.
///
/// Delivery order, error semantics and panic propagation are identical
/// to [`parallel_for_in_order`]; `max_in_flight` is clamped to ≥ 1, and
/// values below `threads` simply idle the surplus workers.
pub fn parallel_for_in_order_bounded<T, E, F, C>(
    n: usize,
    threads: usize,
    max_in_flight: usize,
    f: F,
    mut consume: C,
) -> Result<(), E>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T) -> Result<(), E>,
{
    let workers = threads.clamp(1, n.max(1));
    let bound = max_in_flight.max(1);
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            consume(i, f(i))?;
        }
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // (indices consumed so far, wakeup for workers gated on the bound).
    let gate: (Mutex<usize>, Condvar) = (Mutex::new(0), Condvar::new());
    /// Like [`PoisonOnPanic`], but also wakes workers blocked on the
    /// backpressure gate — otherwise a panic elsewhere would leave them
    /// waiting on a notify that never comes.
    struct GatePoison<'a> {
        stop: &'a AtomicBool,
        gate: &'a (Mutex<usize>, Condvar),
    }
    impl Drop for GatePoison<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.stop.store(true, Ordering::SeqCst);
                let _held = self.gate.0.lock().unwrap_or_else(|e| e.into_inner());
                self.gate.1.notify_all();
            }
        }
    }
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    let mut outcome = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let stop = &stop;
            let gate = &gate;
            let f = &f;
            scope.spawn(move || {
                let _guard = GatePoison { stop, gate };
                loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    {
                        let mut consumed = gate.0.lock().unwrap_or_else(|e| e.into_inner());
                        while i >= *consumed + bound && !stop.load(Ordering::SeqCst) {
                            consumed = gate.1.wait(consumed).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut pending: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut cursor = 0;
        'deliver: while cursor < n {
            let Ok((i, value)) = rx.recv() else {
                break;
            };
            pending[i] = Some(value);
            while cursor < n {
                let Some(value) = pending[cursor].take() else {
                    break;
                };
                if let Err(e) = consume(cursor, value) {
                    outcome = Err(e);
                    break 'deliver;
                }
                cursor += 1;
                let mut consumed = gate.0.lock().unwrap_or_else(|e| e.into_inner());
                *consumed = cursor;
                gate.1.notify_all();
            }
        }
        // Normal completion or consumer error alike: release any worker
        // still parked on the gate so the scope can join.
        stop.store(true, Ordering::SeqCst);
        {
            let _held = gate.0.lock().unwrap_or_else(|e| e.into_inner());
            gate.1.notify_all();
        }
        drop(rx);
    });
    outcome
}

/// The default worker count: available parallelism, or 1 when unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_all_indices_in_order() {
        for threads in [1, 2, 8, 64] {
            let out = parallel_map(100, threads, |i| i * i);
            assert_eq!(out.len(), 100);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(parallel_map(0, 8, |i| i).is_empty());
        assert_eq!(parallel_map(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn in_order_delivery_at_any_thread_count() {
        for threads in [1, 2, 8, 64] {
            let mut seen = Vec::new();
            let ok: Result<(), ()> = parallel_for_in_order(
                100,
                threads,
                |i| i * 3,
                |i, v| {
                    seen.push((i, v));
                    Ok(())
                },
            );
            assert!(ok.is_ok());
            let expect: Vec<(usize, usize)> = (0..100).map(|i| (i, i * 3)).collect();
            assert_eq!(seen, expect, "threads={threads}");
        }
    }

    #[test]
    fn consumer_error_stops_early() {
        for threads in [1, 4] {
            let mut delivered = 0usize;
            let out = parallel_for_in_order(
                1000,
                threads,
                |i| i,
                |i, _| {
                    if i == 5 {
                        Err("boom")
                    } else {
                        delivered += 1;
                        Ok(())
                    }
                },
            );
            assert_eq!(out, Err("boom"), "threads={threads}");
            assert_eq!(delivered, 5, "threads={threads}");
        }
    }

    #[test]
    fn in_order_empty_and_tiny() {
        let mut count = 0;
        let ok: Result<(), ()> = parallel_for_in_order(
            0,
            8,
            |i| i,
            |_, _| {
                count += 1;
                Ok(())
            },
        );
        assert!(ok.is_ok());
        assert_eq!(count, 0);
        let mut got = None;
        let ok: Result<(), ()> = parallel_for_in_order(
            1,
            8,
            |i| i + 9,
            |i, v| {
                got = Some((i, v));
                Ok(())
            },
        );
        assert!(ok.is_ok());
        assert_eq!(got, Some((0, 9)));
    }

    #[test]
    fn bounded_in_order_delivery_at_any_thread_count() {
        for (threads, bound) in [(1, 1), (2, 1), (4, 2), (8, 3), (8, 1000)] {
            let mut seen = Vec::new();
            let ok: Result<(), ()> = parallel_for_in_order_bounded(
                100,
                threads,
                bound,
                |i| i * 3,
                |i, v| {
                    seen.push((i, v));
                    Ok(())
                },
            );
            assert!(ok.is_ok());
            let expect: Vec<(usize, usize)> = (0..100).map(|i| (i, i * 3)).collect();
            assert_eq!(seen, expect, "threads={threads} bound={bound}");
        }
    }

    #[test]
    fn bounded_pool_never_runs_ahead_of_the_bound() {
        use std::sync::atomic::AtomicUsize;
        // `started - consumed` must never exceed the bound: a worker may
        // only begin index i once i < consumed + bound.
        const BOUND: usize = 3;
        let started = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        let ok: Result<(), ()> = parallel_for_in_order_bounded(
            200,
            8,
            BOUND,
            |_| {
                let s = started.fetch_add(1, Ordering::SeqCst) + 1;
                let c = consumed.load(Ordering::SeqCst);
                if s > c + BOUND {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            },
            |_, _| {
                // A deliberately slow consumer, so unbounded workers
                // *would* run far ahead.
                std::thread::sleep(std::time::Duration::from_micros(500));
                consumed.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        );
        assert!(ok.is_ok());
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn bounded_consumer_error_stops_early() {
        for threads in [1, 4] {
            let mut delivered = 0usize;
            let out = parallel_for_in_order_bounded(
                1000,
                threads,
                2,
                |i| i,
                |i, _| {
                    if i == 5 {
                        Err("boom")
                    } else {
                        delivered += 1;
                        Ok(())
                    }
                },
            );
            assert_eq!(out, Err("boom"), "threads={threads}");
            assert_eq!(delivered, 5, "threads={threads}");
        }
    }

    #[test]
    fn bounded_empty_and_tiny() {
        let mut count = 0;
        let ok: Result<(), ()> = parallel_for_in_order_bounded(
            0,
            8,
            1,
            |i| i,
            |_, _| {
                count += 1;
                Ok(())
            },
        );
        assert!(ok.is_ok());
        assert_eq!(count, 0);
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let _ = parallel_map(16, 4, |i| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(10));
            LIVE.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(PEAK.load(Ordering::SeqCst) > 1, "no overlap observed");
    }
}
