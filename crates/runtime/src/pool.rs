//! Minimal scoped thread pool: an atomic work queue over an indexed
//! result vector. Results land at their input index, so callers see the
//! same output regardless of thread count or interleaving.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across `threads` workers and collects the results in
/// index order. `f` must be safe to call concurrently from multiple
/// threads (it is `Sync`); each index is evaluated exactly once.
///
/// Panics in `f` propagate to the caller after all workers stop.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Mutex<Option<T>> rather than OnceLock<T>: the slot only needs
    // T: Send (each index is written once, by one worker), and
    // Mutex<T>: Sync does not require T: Sync.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Fail fast: a panicking worker poisons the queue so the survivors
    // stop instead of draining the remaining work before the panic
    // resurfaces from the scope join.
    let poisoned = AtomicBool::new(false);
    struct PoisonOnPanic<'a>(&'a AtomicBool);
    impl Drop for PoisonOnPanic<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::SeqCst);
            }
        }
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _guard = PoisonOnPanic(&poisoned);
                loop {
                    if poisoned.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("slot lock poisoned") = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker completed every index")
        })
        .collect()
}

/// The default worker count: available parallelism, or 1 when unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_all_indices_in_order() {
        for threads in [1, 2, 8, 64] {
            let out = parallel_map(100, threads, |i| i * i);
            assert_eq!(out.len(), 100);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(parallel_map(0, 8, |i| i).is_empty());
        assert_eq!(parallel_map(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let _ = parallel_map(16, 4, |i| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(10));
            LIVE.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(PEAK.load(Ordering::SeqCst) > 1, "no overlap observed");
    }
}
