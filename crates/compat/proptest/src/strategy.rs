//! Value-generation strategies (no shrinking — see the crate docs).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (re-draws, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive draws: {}",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (1u64..5, 0.0f64..1.0).prop_map(|(n, x)| n as f64 + x);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = Union::new(vec![Just(1u64).boxed(), Just(2u64).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn filter_rejects() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }
}
