//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec` strategy: a length from `size`, then that many elements.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = vec(0.0f64..1.0, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
