//! Test-runner configuration.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}
