//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the subset of the proptest API the workspace's property
//! tests use is vendored here:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, implemented for
//!   numeric ranges and tuples,
//! * [`collection::vec`], [`prop_oneof!`], [`strategy::Just`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Semantics differ from upstream in one way that matters: there is **no
//! shrinking** — a failing case reports its inputs via the assertion
//! message and the case index. Case generation is deterministic per test
//! (seeded from the test's module path and name), so failures reproduce
//! exactly. `PROPTEST_CASES` overrides the default case count.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform `bool` strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    /// `prop::collection::vec(..)`-style paths, as in upstream's prelude.
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed from the test's full name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), l, r));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), format!($($fmt)+), l, r));
                }
            }
        }
    };
}

/// Skips the current case (counts as passed) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
