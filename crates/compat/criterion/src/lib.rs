//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the API subset the workspace's benches use is vendored
//! here: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Methodology (simpler than upstream, adequate for regression tracking):
//! each bench is warmed up for [`Criterion::warm_up_time`], the iteration
//! count is chosen to fill [`Criterion::measurement_time`], and the mean,
//! best and worst per-iteration times over that window are printed.
//! `CRITERION_QUICK=1` shrinks both windows 10x for smoke runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (its result is black-boxed).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Warm-up window per bench.
    pub warm_up_time: Duration,
    /// Measurement window per bench.
    pub measurement_time: Duration,
    /// Measurement batches (mean/best/worst are over these).
    pub sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let scale = if quick { 10 } else { 1 };
        Criterion {
            warm_up_time: Duration::from_millis(300 / scale),
            measurement_time: Duration::from_millis(1500 / scale),
            sample_count: 10,
        }
    }
}

impl Criterion {
    /// Runs one named bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(self, name, f);
        self
    }

    /// Starts a named group of benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_count: None,
            _name: name.to_string(),
        }
    }
}

/// A group of related benches (upstream-compatible surface).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    /// Group-scoped override; as in upstream, it dies with the group.
    sample_count: Option<usize>,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named bench within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_count {
            config.sample_count = n;
        }
        run_bench(&config, name, f);
        self
    }

    /// Overrides the batch count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    // Warm-up: single iterations until the window closes; the observed
    // rate sizes the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < c.warm_up_time || warm_iters == 0 {
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let samples = c.sample_count.max(2);
    let budget = c.measurement_time.as_secs_f64() / samples as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

    let (mut best, mut worst, mut total) = (f64::INFINITY, 0.0f64, 0.0f64);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let t = b.elapsed.as_secs_f64() / iters_per_sample as f64;
        best = best.min(t);
        worst = worst.max(t);
        total += t;
    }
    let mean = total / samples as f64;
    println!(
        "  {name:<40} mean {:>12}  best {:>12}  worst {:>12}  ({} x {} iters)",
        fmt_time(mean),
        fmt_time(best),
        fmt_time(worst),
        samples,
        iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles bench functions into one named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_routine() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion {
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
            sample_count: 3,
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_function("noop2", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
