//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the subset of the `rand 0.8` API the workspace actually
//! uses is vendored here: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic per
//! seed and statistically solid for simulation workloads (it is *not* the
//! same stream as upstream `rand`'s ChaCha-based `StdRng`, which no code
//! in this workspace relies on).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain by
/// [`Rng::gen`]: `[0, 1)` for floats, the full range for integers.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive f64 range");
        // 53 bits over [0, 1] inclusive of both ends.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

/// Uniform draw from `[0, span)` by rejection (span > 0).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The generator interface (the subset of `rand::Rng` this workspace
/// uses).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw over the type's natural domain (`[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&v));
            let w = rng.gen_range(5.0f64..=6.0);
            assert!((5.0..=6.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
