//! Property-based tests for the processor model.

use acs_model::units::{Cycles, Freq, Volt};
use acs_power::{FreqModel, LevelTable, Processor};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = FreqModel> {
    prop_oneof![
        (1.0f64..200.0).prop_map(|k| FreqModel::linear(k).unwrap()),
        (10.0f64..300.0, 0.0f64..1.2, 1.0f64..2.0).prop_map(|(k, vth, a)| FreqModel::alpha(
            k,
            Volt::from_volts(vth),
            a
        )
        .unwrap()),
    ]
}

proptest! {
    /// volt_for ∘ freq_at is the identity above threshold.
    #[test]
    fn voltage_frequency_round_trip(model in arb_model(), v in 1.3f64..6.0) {
        let f = model.freq_at(Volt::from_volts(v));
        prop_assume!(f.as_cycles_per_ms() > 0.0);
        let back = model.volt_for(f).as_volts();
        prop_assert!((back - v).abs() < 1e-6 * v, "{back} vs {v}");
    }

    /// Frequency is monotone in voltage.
    #[test]
    fn frequency_monotone(model in arb_model(), v in 1.3f64..5.0, dv in 0.01f64..1.0) {
        let f1 = model.freq_at(Volt::from_volts(v)).as_cycles_per_ms();
        let f2 = model.freq_at(Volt::from_volts(v + dv)).as_cycles_per_ms();
        prop_assert!(f2 > f1);
    }

    /// Energy is monotone in both voltage and cycle count and scales
    /// exactly with C_eff.
    #[test]
    fn energy_monotonicity(
        v1 in 0.5f64..3.0,
        dv in 0.0f64..1.0,
        n1 in 1.0f64..1e6,
        dn in 0.0f64..1e6,
        c in 0.1f64..10.0,
    ) {
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.1))
            .vmax(Volt::from_volts(5.0))
            .build()
            .unwrap();
        let e_base = cpu.energy(c, Volt::from_volts(v1), Cycles::from_cycles(n1));
        let e_hi_v = cpu.energy(c, Volt::from_volts(v1 + dv), Cycles::from_cycles(n1));
        let e_hi_n = cpu.energy(c, Volt::from_volts(v1), Cycles::from_cycles(n1 + dn));
        prop_assert!(e_hi_v >= e_base);
        prop_assert!(e_hi_n >= e_base);
        let e_2c = cpu.energy(2.0 * c, Volt::from_volts(v1), Cycles::from_cycles(n1));
        prop_assert!((e_2c.as_units() - 2.0 * e_base.as_units()).abs() < 1e-9 * e_2c.as_units().max(1.0));
    }

    /// Discrete dispatch never under-delivers speed: the level chosen
    /// yields at least the requested frequency.
    #[test]
    fn discrete_round_up_is_safe(
        n_levels in 2usize..12,
        speed_frac in 0.01f64..1.0,
    ) {
        let step = (4.0 - 0.5) / (n_levels - 1) as f64;
        let levels: Vec<Volt> = (0..n_levels)
            .map(|i| Volt::from_volts(0.5 + step * i as f64))
            .collect();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(LevelTable::new(levels).unwrap())
            .build()
            .unwrap();
        let requested = Freq::from_cycles_per_ms(speed_frac * cpu.f_max().as_cycles_per_ms());
        let v = cpu.dispatch_voltage(requested).unwrap();
        let delivered = cpu.freq_at(v).unwrap();
        prop_assert!(delivered.as_cycles_per_ms() >= requested.as_cycles_per_ms() - 1e-9);
    }

    /// volt_for_speed is monotone in the requested speed (more work per
    /// unit time never costs less voltage).
    #[test]
    fn voltage_monotone_in_speed(
        model in arb_model(),
        lo_frac in 0.01f64..0.9,
        hi_extra in 0.0f64..0.09,
    ) {
        let cpu = Processor::builder(model)
            .vmin(Volt::from_volts(1.3))
            .vmax(Volt::from_volts(400.0))
            .build()
            .unwrap();
        let fmax = cpu.f_max().as_cycles_per_ms();
        let s1 = lo_frac * fmax;
        let s2 = (lo_frac + hi_extra) * fmax;
        let v1 = cpu.volt_for_speed(Freq::from_cycles_per_ms(s1)).unwrap();
        let v2 = cpu.volt_for_speed(Freq::from_cycles_per_ms(s2)).unwrap();
        prop_assert!(v2 >= v1 - Volt::from_volts(1e-9));
    }
}
