//! # acs-power
//!
//! DVS processor power model for the `acsched` workspace: frequency–voltage
//! laws, dynamic energy accounting, discrete voltage levels and transition
//! overheads.
//!
//! The paper (Leung/Tsui/Hu, DATE 2005, §2.2) models a variable-voltage
//! processor by
//!
//! * cycle time `t_cycle ∝ V / (V − Vth)^α` — here [`FreqModel::Alpha`],
//!   with the motivational example's simplification `f = κ·V`
//!   ([`FreqModel::Linear`]);
//! * dynamic energy `E = C_eff · V² · N` for `N` executed cycles —
//!   [`Processor::energy`];
//! * optionally, a static (leakage) term: `P(f) = C_eff·V(f)²·f +
//!   P_static` while executing and `P_idle` while idling, with the
//!   derived [`Processor::critical_speed`] below which slowing down
//!   stops saving energy (see `docs/POWER_MODEL.md`). Both default to
//!   zero — the paper's model.
//!
//! ## Example
//!
//! ```
//! use acs_power::{FreqModel, Processor};
//! use acs_model::units::{Cycles, TimeSpan, Volt};
//!
//! # fn main() -> Result<(), acs_power::PowerError> {
//! let cpu = Processor::builder(FreqModel::linear(50.0)?)
//!     .vmin(Volt::from_volts(1.0))
//!     .vmax(Volt::from_volts(4.0))
//!     .build()?;
//!
//! // Running 1000 cycles spread over 10 ms needs 2 V and costs
//! // C·V²·N = 1·4·1000 energy units.
//! let speed = Cycles::from_cycles(1000.0) / TimeSpan::from_ms(10.0);
//! let v = cpu.volt_for_speed(speed)?;
//! assert_eq!(v.as_volts(), 2.0);
//! assert_eq!(cpu.energy(1.0, v, Cycles::from_cycles(1000.0)).as_units(), 4000.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod freq;
pub mod levels;
pub mod processor;
pub mod text;

pub use error::PowerError;
pub use freq::FreqModel;
pub use levels::{LevelTable, VoltageLevels};
pub use processor::{Processor, ProcessorBuilder, TransitionOverhead};
