//! Error type for the power model.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by processor-model construction or voltage queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A model parameter violated an invariant (e.g. non-positive κ).
    InvalidModel {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// The requested speed exceeds what the processor can deliver at its
    /// maximum supply voltage.
    SpeedUnachievable {
        /// Requested speed in cycles per millisecond.
        requested: f64,
        /// Maximum achievable speed in cycles per millisecond.
        max: f64,
    },
    /// A voltage outside the processor's `[vmin, vmax]` range was used.
    VoltageOutOfRange {
        /// The offending voltage in volts.
        volts: f64,
        /// Lower bound in volts.
        vmin: f64,
        /// Upper bound in volts.
        vmax: f64,
    },
    /// A discrete-level table was empty or not strictly increasing.
    InvalidLevels {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidModel { reason } => {
                write!(f, "invalid frequency model: {reason}")
            }
            PowerError::SpeedUnachievable { requested, max } => write!(
                f,
                "requested speed {requested:.3} cyc/ms exceeds maximum {max:.3} cyc/ms"
            ),
            PowerError::VoltageOutOfRange { volts, vmin, vmax } => write!(
                f,
                "voltage {volts:.3} V outside supported range [{vmin:.3}, {vmax:.3}] V"
            ),
            PowerError::InvalidLevels { reason } => {
                write!(f, "invalid discrete voltage levels: {reason}")
            }
        }
    }
}

impl StdError for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_numbers() {
        let e = PowerError::SpeedUnachievable {
            requested: 200.0,
            max: 150.0,
        };
        assert!(e.to_string().contains("200.000"));
        assert!(e.to_string().contains("150.000"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<PowerError>();
    }
}
