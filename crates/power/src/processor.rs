//! The variable-voltage processor.

use crate::error::PowerError;
use crate::freq::FreqModel;
use crate::levels::{LevelTable, VoltageLevels};
use acs_model::units::{Cycles, Energy, Freq, TimeSpan, Volt};

/// Energy and time cost of one voltage/frequency transition.
///
/// The paper ignores transition overhead ("the increase of energy
/// consumption is negligible when the transition time is small compared
/// with the task execution time", §3); the simulator can model it anyway
/// so the ablation benches can quantify when that assumption holds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransitionOverhead {
    /// Dead time during which no cycles execute.
    pub time: TimeSpan,
    /// Energy drawn by the DC–DC converter per switch.
    pub energy: Energy,
}

impl TransitionOverhead {
    /// No overhead — the paper's assumption.
    pub const NONE: TransitionOverhead = TransitionOverhead {
        time: TimeSpan::ZERO,
        energy: Energy::ZERO,
    };
}

/// A DVS processor: frequency law + usable voltage range (+ optional
/// discrete levels and transition costs).
///
/// ```
/// use acs_power::{FreqModel, Processor};
/// use acs_model::units::{Cycles, Freq, Volt};
///
/// // The motivational example's processor: f = 50·V cyc/ms, 1–4 V.
/// let cpu = Processor::builder(FreqModel::linear(50.0)?)
///     .vmin(Volt::from_volts(1.0))
///     .vmax(Volt::from_volts(4.0))
///     .build()?;
/// assert_eq!(cpu.f_max().as_cycles_per_ms(), 200.0);
/// let v = cpu.volt_for_speed(Freq::from_cycles_per_ms(150.0))?;
/// assert_eq!(v.as_volts(), 3.0);
/// # Ok::<(), acs_power::PowerError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    model: FreqModel,
    vmin: Volt,
    vmax: Volt,
    levels: VoltageLevels,
    overhead: TransitionOverhead,
    f_min: Freq,
    f_max: Freq,
}

/// Relative tolerance absorbed before a speed request counts as beyond
/// `f_max` (floating-point noise from schedule arithmetic).
const SPEED_TOL: f64 = 1e-9;

impl Processor {
    /// Starts a builder for a processor using the given frequency law.
    pub fn builder(model: FreqModel) -> ProcessorBuilder {
        ProcessorBuilder::new(model)
    }

    /// The frequency–voltage law.
    pub fn freq_model(&self) -> &FreqModel {
        &self.model
    }

    /// Minimum usable supply voltage.
    pub fn vmin(&self) -> Volt {
        self.vmin
    }

    /// Maximum usable supply voltage.
    pub fn vmax(&self) -> Volt {
        self.vmax
    }

    /// Discrete level table, if any.
    pub fn levels(&self) -> &VoltageLevels {
        &self.levels
    }

    /// Per-switch transition overhead.
    pub fn overhead(&self) -> TransitionOverhead {
        self.overhead
    }

    /// Speed at `vmin` — the slowest the processor can run.
    pub fn f_min(&self) -> Freq {
        self.f_min
    }

    /// Speed at `vmax` — the fastest the processor can run.
    pub fn f_max(&self) -> Freq {
        self.f_max
    }

    /// Frequency delivered at voltage `v`.
    ///
    /// # Errors
    ///
    /// [`PowerError::VoltageOutOfRange`] when `v ∉ [vmin, vmax]`.
    pub fn freq_at(&self, v: Volt) -> Result<Freq, PowerError> {
        self.check_voltage(v)?;
        Ok(self.model.freq_at(v))
    }

    /// Exact voltage required to run at `speed` (continuous DVS).
    ///
    /// Speeds below `f_min` are served at `vmin` (the processor cannot run
    /// slower; the workload simply finishes early).
    ///
    /// # Errors
    ///
    /// [`PowerError::SpeedUnachievable`] when `speed > f_max` (beyond a
    /// `1e-9` relative tolerance absorbed for floating-point noise).
    pub fn volt_for_speed(&self, speed: Freq) -> Result<Volt, PowerError> {
        let fmax = self.f_max.as_cycles_per_ms();
        if speed.as_cycles_per_ms() > fmax * (1.0 + SPEED_TOL) {
            return Err(PowerError::SpeedUnachievable {
                requested: speed.as_cycles_per_ms(),
                max: fmax,
            });
        }
        if speed <= self.f_min {
            return Ok(self.vmin);
        }
        Ok(self.model.volt_for(speed).min(self.vmax))
    }

    /// Clamps a runtime speed request into the realizable
    /// `[f_min, f_max]` band: over-requests (beyond the same tolerance
    /// [`Processor::volt_for_speed`] uses) and non-finite values saturate
    /// at `f_max` and are flagged; under-requests rise to `f_min`
    /// unflagged (the processor cannot run slower — the workload simply
    /// finishes early, exactly as serving the request at `vmin` does).
    pub fn clamp_speed(&self, requested: Freq) -> (Freq, bool) {
        let r = requested.as_cycles_per_ms();
        if !r.is_finite() || r > self.f_max.as_cycles_per_ms() * (1.0 + SPEED_TOL) {
            return (self.f_max, true);
        }
        if r < self.f_min.as_cycles_per_ms() {
            return (self.f_min, false);
        }
        (requested, false)
    }

    /// Like [`Processor::volt_for_speed`] but saturating at `vmax`;
    /// returns the voltage and whether saturation occurred. The simulator
    /// uses this to keep running (and flag a deadline risk) instead of
    /// aborting when handed an infeasible schedule.
    pub fn volt_for_speed_clamped(&self, speed: Freq) -> (Volt, bool) {
        match self.volt_for_speed(speed) {
            Ok(v) => (v, false),
            Err(_) => (self.vmax, true),
        }
    }

    /// Voltage actually used when the runtime requests `speed`, honoring
    /// the discrete level table by rounding *up* (conservative: deadlines
    /// stay safe).
    ///
    /// # Errors
    ///
    /// [`PowerError::SpeedUnachievable`] when even the highest level is
    /// too slow for `speed`.
    pub fn dispatch_voltage(&self, speed: Freq) -> Result<Volt, PowerError> {
        let exact = self.volt_for_speed(speed)?;
        match &self.levels {
            VoltageLevels::Continuous => Ok(exact),
            VoltageLevels::Discrete(table) => {
                table.round_up(exact).ok_or(PowerError::SpeedUnachievable {
                    requested: speed.as_cycles_per_ms(),
                    max: self.model.freq_at(table.highest()).as_cycles_per_ms(),
                })
            }
        }
    }

    /// Dynamic energy of executing `cycles` at voltage `v` with effective
    /// switching capacitance `c_eff` (paper eq. (3): `E = C_eff·V²·N`).
    pub fn energy(&self, c_eff: f64, v: Volt, cycles: Cycles) -> Energy {
        Energy::from_units(c_eff * v.as_volts() * v.as_volts() * cycles.as_cycles())
    }

    /// Energy of executing `cycles` at exactly `speed` (continuous DVS).
    ///
    /// # Errors
    ///
    /// Propagates [`PowerError::SpeedUnachievable`] from the voltage query.
    pub fn energy_at_speed(
        &self,
        c_eff: f64,
        speed: Freq,
        cycles: Cycles,
    ) -> Result<Energy, PowerError> {
        let v = self.volt_for_speed(speed)?;
        Ok(self.energy(c_eff, v, cycles))
    }

    /// Time to execute `cycles` at voltage `v`.
    ///
    /// # Errors
    ///
    /// [`PowerError::VoltageOutOfRange`] when `v ∉ [vmin, vmax]`.
    pub fn execution_time(&self, v: Volt, cycles: Cycles) -> Result<TimeSpan, PowerError> {
        let f = self.freq_at(v)?;
        Ok(cycles / f)
    }

    fn check_voltage(&self, v: Volt) -> Result<(), PowerError> {
        if v < self.vmin - Volt::from_volts(1e-12) || v > self.vmax + Volt::from_volts(1e-12) {
            return Err(PowerError::VoltageOutOfRange {
                volts: v.as_volts(),
                vmin: self.vmin.as_volts(),
                vmax: self.vmax.as_volts(),
            });
        }
        Ok(())
    }
}

/// Builder for [`Processor`].
#[derive(Debug, Clone)]
pub struct ProcessorBuilder {
    model: FreqModel,
    vmin: Volt,
    vmax: Volt,
    levels: VoltageLevels,
    overhead: TransitionOverhead,
}

impl ProcessorBuilder {
    /// Starts with the given frequency law; defaults: `vmin = 1 V`,
    /// `vmax = 4 V`, continuous levels, zero transition overhead (the
    /// motivational example's processor).
    pub fn new(model: FreqModel) -> Self {
        ProcessorBuilder {
            model,
            vmin: Volt::from_volts(1.0),
            vmax: Volt::from_volts(4.0),
            levels: VoltageLevels::Continuous,
            overhead: TransitionOverhead::NONE,
        }
    }

    /// Sets the minimum usable voltage.
    pub fn vmin(mut self, vmin: Volt) -> Self {
        self.vmin = vmin;
        self
    }

    /// Sets the maximum usable voltage.
    pub fn vmax(mut self, vmax: Volt) -> Self {
        self.vmax = vmax;
        self
    }

    /// Restricts the processor to a discrete voltage-level table.
    ///
    /// Levels outside `[vmin, vmax]` are rejected at `build` time.
    pub fn discrete_levels(mut self, table: LevelTable) -> Self {
        self.levels = VoltageLevels::Discrete(table);
        self
    }

    /// Sets the per-switch transition overhead.
    pub fn transition_overhead(mut self, overhead: TransitionOverhead) -> Self {
        self.overhead = overhead;
        self
    }

    /// Validates and builds the processor.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidModel`] when `0 < vmin < vmax` is violated or
    /// the law delivers zero speed at `vmax`;
    /// [`PowerError::InvalidLevels`] when a discrete level lies outside
    /// `[vmin, vmax]`.
    pub fn build(self) -> Result<Processor, PowerError> {
        if !(self.vmin.as_volts() > 0.0 && self.vmin < self.vmax) {
            return Err(PowerError::InvalidModel {
                reason: format!(
                    "voltage range must satisfy 0 < vmin < vmax, got [{}, {}]",
                    self.vmin, self.vmax
                ),
            });
        }
        if self.overhead.time.as_ms() < 0.0 || self.overhead.energy.as_units() < 0.0 {
            return Err(PowerError::InvalidModel {
                reason: "transition overhead must be non-negative".into(),
            });
        }
        if let VoltageLevels::Discrete(table) = &self.levels {
            if table.lowest() < self.vmin || table.highest() > self.vmax {
                return Err(PowerError::InvalidLevels {
                    reason: format!(
                        "levels [{}, {}] must lie within [{}, {}]",
                        table.lowest(),
                        table.highest(),
                        self.vmin,
                        self.vmax
                    ),
                });
            }
        }
        let f_min = self.model.freq_at(self.vmin);
        let f_max = self.model.freq_at(self.vmax);
        if f_max.as_cycles_per_ms() <= 0.0 {
            return Err(PowerError::InvalidModel {
                reason: "frequency at vmax must be positive".into(),
            });
        }
        Ok(Processor {
            model: self.model,
            vmin: self.vmin,
            vmax: self.vmax,
            levels: self.levels,
            overhead: self.overhead,
            f_min,
            f_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Processor {
        Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap()
    }

    #[test]
    fn speed_range() {
        let p = cpu();
        assert_eq!(p.f_min().as_cycles_per_ms(), 50.0);
        assert_eq!(p.f_max().as_cycles_per_ms(), 200.0);
    }

    #[test]
    fn volt_for_speed_clamps_low_and_rejects_high() {
        let p = cpu();
        // Below f_min: vmin.
        assert_eq!(
            p.volt_for_speed(Freq::from_cycles_per_ms(10.0)).unwrap(),
            Volt::from_volts(1.0)
        );
        // In range: exact.
        assert_eq!(
            p.volt_for_speed(Freq::from_cycles_per_ms(100.0)).unwrap(),
            Volt::from_volts(2.0)
        );
        // Above f_max: error.
        let err = p
            .volt_for_speed(Freq::from_cycles_per_ms(201.0))
            .unwrap_err();
        assert!(matches!(err, PowerError::SpeedUnachievable { .. }));
        // Tiny overshoot tolerated.
        assert!(p
            .volt_for_speed(Freq::from_cycles_per_ms(200.0 * (1.0 + 1e-12)))
            .is_ok());
    }

    #[test]
    fn clamped_variant_saturates() {
        let p = cpu();
        let (v, sat) = p.volt_for_speed_clamped(Freq::from_cycles_per_ms(500.0));
        assert_eq!(v, Volt::from_volts(4.0));
        assert!(sat);
        let (v, sat) = p.volt_for_speed_clamped(Freq::from_cycles_per_ms(100.0));
        assert_eq!(v, Volt::from_volts(2.0));
        assert!(!sat);
    }

    #[test]
    fn clamp_speed_band() {
        let p = cpu();
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(100.0)),
            (Freq::from_cycles_per_ms(100.0), false)
        );
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(500.0)),
            (p.f_max(), true)
        );
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(f64::NAN)),
            (p.f_max(), true)
        );
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(1.0)),
            (p.f_min(), false)
        );
        // Tiny overshoot tolerated, same as volt_for_speed.
        let (f, sat) = p.clamp_speed(Freq::from_cycles_per_ms(200.0 * (1.0 + 1e-12)));
        assert!(!sat);
        assert!((f.as_cycles_per_ms() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn energy_matches_paper_equation() {
        let p = cpu();
        // E = C·V²·N = 1 · 9 · 500
        let e = p.energy(1.0, Volt::from_volts(3.0), Cycles::from_cycles(500.0));
        assert_eq!(e, Energy::from_units(4500.0));
        let e2 = p
            .energy_at_speed(
                2.0,
                Freq::from_cycles_per_ms(100.0),
                Cycles::from_cycles(10.0),
            )
            .unwrap();
        assert_eq!(e2, Energy::from_units(2.0 * 4.0 * 10.0));
    }

    #[test]
    fn execution_time_and_range_check() {
        let p = cpu();
        let t = p
            .execution_time(Volt::from_volts(3.0), Cycles::from_cycles(1000.0))
            .unwrap();
        assert!(t.approx_eq(TimeSpan::from_ms(1000.0 / 150.0), 1e-12));
        assert!(p
            .execution_time(Volt::from_volts(0.5), Cycles::from_cycles(1.0))
            .is_err());
        assert!(p.freq_at(Volt::from_volts(4.5)).is_err());
    }

    #[test]
    fn discrete_levels_round_up() {
        let table = LevelTable::new(vec![
            Volt::from_volts(1.0),
            Volt::from_volts(2.0),
            Volt::from_volts(3.0),
            Volt::from_volts(4.0),
        ])
        .unwrap();
        let p = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .build()
            .unwrap();
        // 120 cyc/ms needs 2.4 V exactly -> rounds up to 3 V.
        assert_eq!(
            p.dispatch_voltage(Freq::from_cycles_per_ms(120.0)).unwrap(),
            Volt::from_volts(3.0)
        );
        // Exactly at a level stays there.
        assert_eq!(
            p.dispatch_voltage(Freq::from_cycles_per_ms(100.0)).unwrap(),
            Volt::from_volts(2.0)
        );
    }

    #[test]
    fn continuous_dispatch_is_exact() {
        let p = cpu();
        assert_eq!(
            p.dispatch_voltage(Freq::from_cycles_per_ms(120.0)).unwrap(),
            Volt::from_volts(2.4)
        );
    }

    #[test]
    fn builder_rejects_bad_ranges_and_levels() {
        let m = || FreqModel::linear(50.0).unwrap();
        assert!(Processor::builder(m())
            .vmin(Volt::from_volts(4.0))
            .vmax(Volt::from_volts(1.0))
            .build()
            .is_err());
        assert!(Processor::builder(m()).vmin(Volt::ZERO).build().is_err());
        let outside = LevelTable::new(vec![Volt::from_volts(0.5)]).unwrap();
        assert!(Processor::builder(m())
            .discrete_levels(outside)
            .build()
            .is_err());
        let neg = TransitionOverhead {
            time: TimeSpan::from_ms(-1.0),
            energy: Energy::ZERO,
        };
        assert!(Processor::builder(m())
            .transition_overhead(neg)
            .build()
            .is_err());
    }

    #[test]
    fn alpha_processor_rejects_vmax_at_threshold() {
        let m = FreqModel::alpha(100.0, Volt::from_volts(5.0), 2.0).unwrap();
        let err = Processor::builder(m)
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("positive"));
    }
}
