//! The variable-voltage processor.

use crate::error::PowerError;
use crate::freq::FreqModel;
use crate::levels::{LevelTable, VoltageLevels};
use acs_model::units::{Cycles, Energy, Freq, TimeSpan, Volt};

/// Energy and time cost of one voltage/frequency transition.
///
/// The paper ignores transition overhead ("the increase of energy
/// consumption is negligible when the transition time is small compared
/// with the task execution time", §3); the simulator can model it anyway
/// so the ablation benches can quantify when that assumption holds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransitionOverhead {
    /// Dead time during which no cycles execute.
    pub time: TimeSpan,
    /// Energy drawn by the DC–DC converter per switch.
    pub energy: Energy,
}

impl TransitionOverhead {
    /// No overhead — the paper's assumption.
    pub const NONE: TransitionOverhead = TransitionOverhead {
        time: TimeSpan::ZERO,
        energy: Energy::ZERO,
    };
}

/// A DVS processor: frequency law + usable voltage range (+ optional
/// discrete levels and transition costs).
///
/// ```
/// use acs_power::{FreqModel, Processor};
/// use acs_model::units::{Cycles, Freq, Volt};
///
/// // The motivational example's processor: f = 50·V cyc/ms, 1–4 V.
/// let cpu = Processor::builder(FreqModel::linear(50.0)?)
///     .vmin(Volt::from_volts(1.0))
///     .vmax(Volt::from_volts(4.0))
///     .build()?;
/// assert_eq!(cpu.f_max().as_cycles_per_ms(), 200.0);
/// let v = cpu.volt_for_speed(Freq::from_cycles_per_ms(150.0))?;
/// assert_eq!(v.as_volts(), 3.0);
/// # Ok::<(), acs_power::PowerError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    model: FreqModel,
    vmin: Volt,
    vmax: Volt,
    levels: VoltageLevels,
    overhead: TransitionOverhead,
    static_power: f64,
    idle_power: f64,
    level_static_power: Option<Vec<f64>>,
    f_min: Freq,
    f_max: Freq,
}

/// Relative tolerance absorbed before a speed request counts as beyond
/// `f_max` (floating-point noise from schedule arithmetic).
const SPEED_TOL: f64 = 1e-9;

impl Processor {
    /// Starts a builder for a processor using the given frequency law.
    pub fn builder(model: FreqModel) -> ProcessorBuilder {
        ProcessorBuilder::new(model)
    }

    /// The frequency–voltage law.
    pub fn freq_model(&self) -> &FreqModel {
        &self.model
    }

    /// Minimum usable supply voltage.
    pub fn vmin(&self) -> Volt {
        self.vmin
    }

    /// Maximum usable supply voltage.
    pub fn vmax(&self) -> Volt {
        self.vmax
    }

    /// Discrete level table, if any.
    pub fn levels(&self) -> &VoltageLevels {
        &self.levels
    }

    /// Per-switch transition overhead.
    pub fn overhead(&self) -> TransitionOverhead {
        self.overhead
    }

    /// Static (leakage) power drawn while the processor executes, in
    /// energy units per millisecond. The full power law is
    /// `P(f) = C_eff·V(f)²·f + P_static`; the paper's model is the
    /// `P_static = 0` special case.
    pub fn static_power(&self) -> f64 {
        self.static_power
    }

    /// Power drawn while the processor idles (not shut down), in energy
    /// units per millisecond. The paper assumes shutdown (zero); model a
    /// platform that cannot power-gate by setting this above zero.
    pub fn idle_power(&self) -> f64 {
        self.idle_power
    }

    /// Per-level static power overrides for discrete processors, aligned
    /// with the level table (index `i` applies at level `i`).
    pub fn level_static_power(&self) -> Option<&[f64]> {
        self.level_static_power.as_deref()
    }

    /// Static power drawn while executing at voltage `v`: the per-level
    /// override when the processor is discrete and one was declared,
    /// otherwise the uniform [`Processor::static_power`]. `v` is matched
    /// to the nearest level at or above it (the same conservative
    /// rounding [`Processor::dispatch_voltage`] applies); voltages above
    /// the highest level (the engine's saturation fallback can execute
    /// at `vmax` when the table cannot serve a request) charge the
    /// highest level's power — the leakiest point of the table, never
    /// less.
    pub fn static_power_at(&self, v: Volt) -> f64 {
        match (&self.levels, &self.level_static_power) {
            (VoltageLevels::Discrete(table), Some(powers)) => table
                .levels()
                .iter()
                .position(|lv| *lv >= v - Volt::from_volts(1e-12))
                .map(|i| powers[i])
                .or(powers.last().copied())
                .unwrap_or(self.static_power),
            _ => self.static_power,
        }
    }

    /// The leakage the critical-speed derivation uses: the *guaranteed*
    /// static power while executing — the per-level minimum when a
    /// per-level table is declared (so the floor never over-raises),
    /// the uniform value otherwise.
    fn guaranteed_static_power(&self) -> f64 {
        match &self.level_static_power {
            Some(powers) => powers.iter().copied().fold(f64::INFINITY, f64::min),
            None => self.static_power,
        }
    }

    /// The fastest speed the dispatch path can actually serve: `f_max`
    /// for continuous processors, the highest level's frequency for
    /// discrete ones (a table's top level may sit below `vmax`).
    fn max_servable_speed(&self) -> f64 {
        match &self.levels {
            VoltageLevels::Continuous => self.f_max.as_cycles_per_ms(),
            VoltageLevels::Discrete(table) => {
                self.model.freq_at(table.highest()).as_cycles_per_ms()
            }
        }
    }

    /// The **critical speed**: the frequency minimizing the per-cycle
    /// energy `e(f) = c_eff·V(f)² + P_static/f`. Below it, stretching
    /// work over more time costs *more* total energy — the static power
    /// integrates over the longer runtime faster than the quadratic
    /// dynamic term shrinks — so no leakage-aware dispatch path should
    /// ever request a slower speed (Huang et al., leakage-aware DVS).
    ///
    /// The derivation uses the *guaranteed* leakage: the per-level
    /// minimum when [`level_static_power`](Processor::level_static_power)
    /// is declared, the uniform `static_power` otherwise — so the floor
    /// never over-raises. Returns [`Freq::ZERO`] when that leakage is
    /// zero (the paper's model: slower is always at least as good), and
    /// never exceeds the highest *servable* speed — `f_max`, or the top
    /// level's frequency on a discrete table whose highest level sits
    /// below `vmax` (flooring past the table would force off-table
    /// saturation). For the linear law `f = κ·V` the optimum is the
    /// closed form `f* = ∛(κ²·P_static / (2·c_eff))`; for the alpha law
    /// the unique root of the strictly increasing `e'(f)` is bisected
    /// to machine precision.
    ///
    /// ```
    /// use acs_power::{FreqModel, Processor};
    /// use acs_model::units::Volt;
    ///
    /// // f = 50·V, P_static = 1000 energy-units/ms, c_eff = 1:
    /// // f* = (50²·1000 / 2)^(1/3) ≈ 107.7 cyc/ms — well above f_min.
    /// let cpu = Processor::builder(FreqModel::linear(50.0)?)
    ///     .vmin(Volt::from_volts(0.5))
    ///     .vmax(Volt::from_volts(4.0))
    ///     .static_power(1000.0)
    ///     .build()?;
    /// let crit = cpu.critical_speed(1.0).as_cycles_per_ms();
    /// assert!((crit - (50.0f64 * 50.0 * 1000.0 / 2.0).cbrt()).abs() < 1e-9);
    ///
    /// // Without leakage there is no lower bound on useful speeds.
    /// let lossless = Processor::builder(FreqModel::linear(50.0)?)
    ///     .vmax(Volt::from_volts(4.0))
    ///     .build()?;
    /// assert_eq!(lossless.critical_speed(1.0).as_cycles_per_ms(), 0.0);
    /// # Ok::<(), acs_power::PowerError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `c_eff` is not finite and positive (caller bug: task
    /// capacitances are validated at model-construction time).
    pub fn critical_speed(&self, c_eff: f64) -> Freq {
        assert!(
            c_eff.is_finite() && c_eff > 0.0,
            "c_eff must be finite and positive, got {c_eff}"
        );
        let p_static = self.guaranteed_static_power();
        if p_static <= 0.0 {
            return Freq::ZERO;
        }
        let cap = self.max_servable_speed();
        match self.model {
            FreqModel::Linear { kappa } => {
                let opt = (kappa * kappa * p_static / (2.0 * c_eff)).cbrt();
                Freq::from_cycles_per_ms(opt.min(cap))
            }
            FreqModel::Alpha { .. } => {
                // e'(f) = 2·c_eff·V(f)·V'(f) − P_static/f²; both terms are
                // strictly increasing in f, so the root is unique.
                let slope = |f: f64| {
                    let freq = Freq::from_cycles_per_ms(f);
                    let v = self.model.volt_for(freq).as_volts();
                    2.0 * c_eff * v * self.model.dvolt_dfreq(freq) - p_static / (f * f)
                };
                if slope(cap) <= 0.0 {
                    return Freq::from_cycles_per_ms(cap);
                }
                let (mut lo, mut hi) = (cap * 1e-9, cap);
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if slope(mid) < 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                    if hi - lo <= 1e-12 * cap {
                        break;
                    }
                }
                Freq::from_cycles_per_ms(0.5 * (lo + hi))
            }
        }
    }

    /// The lowest speed a leakage-aware dispatch path should request:
    /// `max(f_min, critical_speed(c_eff))`. The simulator raises every
    /// under-request to this floor, so with `static_power > 0` no policy
    /// can run the processor below its critical speed.
    pub fn floor_speed(&self, c_eff: f64) -> Freq {
        self.f_min.max(self.critical_speed(c_eff))
    }

    /// Speed at `vmin` — the slowest the processor can run.
    pub fn f_min(&self) -> Freq {
        self.f_min
    }

    /// Speed at `vmax` — the fastest the processor can run.
    pub fn f_max(&self) -> Freq {
        self.f_max
    }

    /// Frequency delivered at voltage `v`.
    ///
    /// # Errors
    ///
    /// [`PowerError::VoltageOutOfRange`] when `v ∉ [vmin, vmax]`.
    pub fn freq_at(&self, v: Volt) -> Result<Freq, PowerError> {
        self.check_voltage(v)?;
        Ok(self.model.freq_at(v))
    }

    /// Exact voltage required to run at `speed` (continuous DVS).
    ///
    /// Speeds below `f_min` are served at `vmin` (the processor cannot run
    /// slower; the workload simply finishes early).
    ///
    /// # Errors
    ///
    /// [`PowerError::SpeedUnachievable`] when `speed > f_max` (beyond a
    /// `1e-9` relative tolerance absorbed for floating-point noise).
    pub fn volt_for_speed(&self, speed: Freq) -> Result<Volt, PowerError> {
        let fmax = self.f_max.as_cycles_per_ms();
        if speed.as_cycles_per_ms() > fmax * (1.0 + SPEED_TOL) {
            return Err(PowerError::SpeedUnachievable {
                requested: speed.as_cycles_per_ms(),
                max: fmax,
            });
        }
        if speed <= self.f_min {
            return Ok(self.vmin);
        }
        Ok(self.model.volt_for(speed).min(self.vmax))
    }

    /// Clamps a runtime speed request into the realizable
    /// `[f_min, f_max]` band: over-requests (beyond the same tolerance
    /// [`Processor::volt_for_speed`] uses) and non-finite values saturate
    /// at `f_max` and are flagged; under-requests rise to `f_min`
    /// unflagged (the processor cannot run slower — the workload simply
    /// finishes early, exactly as serving the request at `vmin` does).
    pub fn clamp_speed(&self, requested: Freq) -> (Freq, bool) {
        let r = requested.as_cycles_per_ms();
        if !r.is_finite() || r > self.f_max.as_cycles_per_ms() * (1.0 + SPEED_TOL) {
            return (self.f_max, true);
        }
        if r < self.f_min.as_cycles_per_ms() {
            return (self.f_min, false);
        }
        (requested, false)
    }

    /// Like [`Processor::volt_for_speed`] but saturating at `vmax`;
    /// returns the voltage and whether saturation occurred. The simulator
    /// uses this to keep running (and flag a deadline risk) instead of
    /// aborting when handed an infeasible schedule.
    pub fn volt_for_speed_clamped(&self, speed: Freq) -> (Volt, bool) {
        match self.volt_for_speed(speed) {
            Ok(v) => (v, false),
            Err(_) => (self.vmax, true),
        }
    }

    /// Voltage actually used when the runtime requests `speed`, honoring
    /// the discrete level table by rounding *up* (conservative: deadlines
    /// stay safe).
    ///
    /// # Errors
    ///
    /// [`PowerError::SpeedUnachievable`] when even the highest level is
    /// too slow for `speed`.
    pub fn dispatch_voltage(&self, speed: Freq) -> Result<Volt, PowerError> {
        let exact = self.volt_for_speed(speed)?;
        match &self.levels {
            VoltageLevels::Continuous => Ok(exact),
            VoltageLevels::Discrete(table) => {
                table.round_up(exact).ok_or(PowerError::SpeedUnachievable {
                    requested: speed.as_cycles_per_ms(),
                    max: self.model.freq_at(table.highest()).as_cycles_per_ms(),
                })
            }
        }
    }

    /// Dynamic energy of executing `cycles` at voltage `v` with effective
    /// switching capacitance `c_eff` (paper eq. (3): `E = C_eff·V²·N`).
    pub fn energy(&self, c_eff: f64, v: Volt, cycles: Cycles) -> Energy {
        Energy::from_units(c_eff * v.as_volts() * v.as_volts() * cycles.as_cycles())
    }

    /// Energy of executing `cycles` at exactly `speed` (continuous DVS).
    ///
    /// # Errors
    ///
    /// Propagates [`PowerError::SpeedUnachievable`] from the voltage query.
    pub fn energy_at_speed(
        &self,
        c_eff: f64,
        speed: Freq,
        cycles: Cycles,
    ) -> Result<Energy, PowerError> {
        let v = self.volt_for_speed(speed)?;
        Ok(self.energy(c_eff, v, cycles))
    }

    /// Time to execute `cycles` at voltage `v`.
    ///
    /// # Errors
    ///
    /// [`PowerError::VoltageOutOfRange`] when `v ∉ [vmin, vmax]`.
    pub fn execution_time(&self, v: Volt, cycles: Cycles) -> Result<TimeSpan, PowerError> {
        let f = self.freq_at(v)?;
        Ok(cycles / f)
    }

    fn check_voltage(&self, v: Volt) -> Result<(), PowerError> {
        if v < self.vmin - Volt::from_volts(1e-12) || v > self.vmax + Volt::from_volts(1e-12) {
            return Err(PowerError::VoltageOutOfRange {
                volts: v.as_volts(),
                vmin: self.vmin.as_volts(),
                vmax: self.vmax.as_volts(),
            });
        }
        Ok(())
    }
}

/// Builder for [`Processor`].
#[derive(Debug, Clone)]
pub struct ProcessorBuilder {
    model: FreqModel,
    vmin: Volt,
    vmax: Volt,
    levels: VoltageLevels,
    overhead: TransitionOverhead,
    static_power: f64,
    idle_power: f64,
    level_static_power: Option<Vec<f64>>,
}

impl ProcessorBuilder {
    /// Starts with the given frequency law; defaults: `vmin = 1 V`,
    /// `vmax = 4 V`, continuous levels, zero transition overhead, zero
    /// static and idle power (the motivational example's processor).
    pub fn new(model: FreqModel) -> Self {
        ProcessorBuilder {
            model,
            vmin: Volt::from_volts(1.0),
            vmax: Volt::from_volts(4.0),
            levels: VoltageLevels::Continuous,
            overhead: TransitionOverhead::NONE,
            static_power: 0.0,
            idle_power: 0.0,
            level_static_power: None,
        }
    }

    /// Sets the minimum usable voltage.
    pub fn vmin(mut self, vmin: Volt) -> Self {
        self.vmin = vmin;
        self
    }

    /// Sets the maximum usable voltage.
    pub fn vmax(mut self, vmax: Volt) -> Self {
        self.vmax = vmax;
        self
    }

    /// Restricts the processor to a discrete voltage-level table.
    ///
    /// Levels outside `[vmin, vmax]` are rejected at `build` time.
    pub fn discrete_levels(mut self, table: LevelTable) -> Self {
        self.levels = VoltageLevels::Discrete(table);
        self
    }

    /// Sets the per-switch transition overhead.
    pub fn transition_overhead(mut self, overhead: TransitionOverhead) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the static (leakage) power drawn while executing, in energy
    /// units per millisecond (default 0 — the paper's dynamic-only
    /// model).
    pub fn static_power(mut self, power: f64) -> Self {
        self.static_power = power;
        self
    }

    /// Sets the power drawn while idle but not shut down, in energy
    /// units per millisecond (default 0 — the paper's shutdown
    /// assumption).
    pub fn idle_power(mut self, power: f64) -> Self {
        self.idle_power = power;
        self
    }

    /// Per-level static-power overrides for a discrete processor, one
    /// value per entry of the level table (higher supply voltages leak
    /// more on real silicon). Requires [`discrete_levels`] with a table
    /// of the same length.
    ///
    /// [`discrete_levels`]: ProcessorBuilder::discrete_levels
    pub fn level_static_power(mut self, powers: Vec<f64>) -> Self {
        self.level_static_power = Some(powers);
        self
    }

    /// Validates and builds the processor.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidModel`] when `0 < vmin < vmax` is violated or
    /// the law delivers zero speed at `vmax`;
    /// [`PowerError::InvalidLevels`] when a discrete level lies outside
    /// `[vmin, vmax]`.
    pub fn build(self) -> Result<Processor, PowerError> {
        if !(self.vmin.as_volts() > 0.0 && self.vmin < self.vmax) {
            return Err(PowerError::InvalidModel {
                reason: format!(
                    "voltage range must satisfy 0 < vmin < vmax, got [{}, {}]",
                    self.vmin, self.vmax
                ),
            });
        }
        if self.overhead.time.as_ms() < 0.0 || self.overhead.energy.as_units() < 0.0 {
            return Err(PowerError::InvalidModel {
                reason: "transition overhead must be non-negative".into(),
            });
        }
        for (what, power) in [
            ("static_power", self.static_power),
            ("idle_power", self.idle_power),
        ] {
            if !(power.is_finite() && power >= 0.0) {
                return Err(PowerError::InvalidModel {
                    reason: format!("{what} must be finite and non-negative, got {power}"),
                });
            }
        }
        if let Some(powers) = &self.level_static_power {
            let VoltageLevels::Discrete(table) = &self.levels else {
                return Err(PowerError::InvalidModel {
                    reason: "level_static_power requires a discrete level table".into(),
                });
            };
            if powers.len() != table.levels().len() {
                return Err(PowerError::InvalidModel {
                    reason: format!(
                        "level_static_power has {} entries for {} levels",
                        powers.len(),
                        table.levels().len()
                    ),
                });
            }
            if let Some(bad) = powers.iter().find(|p| !(p.is_finite() && **p >= 0.0)) {
                return Err(PowerError::InvalidModel {
                    reason: format!(
                        "level_static_power entries must be finite and non-negative, got {bad}"
                    ),
                });
            }
        }
        if let VoltageLevels::Discrete(table) = &self.levels {
            if table.lowest() < self.vmin || table.highest() > self.vmax {
                return Err(PowerError::InvalidLevels {
                    reason: format!(
                        "levels [{}, {}] must lie within [{}, {}]",
                        table.lowest(),
                        table.highest(),
                        self.vmin,
                        self.vmax
                    ),
                });
            }
        }
        let f_min = self.model.freq_at(self.vmin);
        let f_max = self.model.freq_at(self.vmax);
        if f_max.as_cycles_per_ms() <= 0.0 {
            return Err(PowerError::InvalidModel {
                reason: "frequency at vmax must be positive".into(),
            });
        }
        Ok(Processor {
            model: self.model,
            vmin: self.vmin,
            vmax: self.vmax,
            levels: self.levels,
            overhead: self.overhead,
            static_power: self.static_power,
            idle_power: self.idle_power,
            level_static_power: self.level_static_power,
            f_min,
            f_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Processor {
        Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap()
    }

    #[test]
    fn speed_range() {
        let p = cpu();
        assert_eq!(p.f_min().as_cycles_per_ms(), 50.0);
        assert_eq!(p.f_max().as_cycles_per_ms(), 200.0);
    }

    #[test]
    fn volt_for_speed_clamps_low_and_rejects_high() {
        let p = cpu();
        // Below f_min: vmin.
        assert_eq!(
            p.volt_for_speed(Freq::from_cycles_per_ms(10.0)).unwrap(),
            Volt::from_volts(1.0)
        );
        // In range: exact.
        assert_eq!(
            p.volt_for_speed(Freq::from_cycles_per_ms(100.0)).unwrap(),
            Volt::from_volts(2.0)
        );
        // Above f_max: error.
        let err = p
            .volt_for_speed(Freq::from_cycles_per_ms(201.0))
            .unwrap_err();
        assert!(matches!(err, PowerError::SpeedUnachievable { .. }));
        // Tiny overshoot tolerated.
        assert!(p
            .volt_for_speed(Freq::from_cycles_per_ms(200.0 * (1.0 + 1e-12)))
            .is_ok());
    }

    #[test]
    fn clamped_variant_saturates() {
        let p = cpu();
        let (v, sat) = p.volt_for_speed_clamped(Freq::from_cycles_per_ms(500.0));
        assert_eq!(v, Volt::from_volts(4.0));
        assert!(sat);
        let (v, sat) = p.volt_for_speed_clamped(Freq::from_cycles_per_ms(100.0));
        assert_eq!(v, Volt::from_volts(2.0));
        assert!(!sat);
    }

    #[test]
    fn clamp_speed_band() {
        let p = cpu();
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(100.0)),
            (Freq::from_cycles_per_ms(100.0), false)
        );
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(500.0)),
            (p.f_max(), true)
        );
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(f64::NAN)),
            (p.f_max(), true)
        );
        assert_eq!(
            p.clamp_speed(Freq::from_cycles_per_ms(1.0)),
            (p.f_min(), false)
        );
        // Tiny overshoot tolerated, same as volt_for_speed.
        let (f, sat) = p.clamp_speed(Freq::from_cycles_per_ms(200.0 * (1.0 + 1e-12)));
        assert!(!sat);
        assert!((f.as_cycles_per_ms() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn energy_matches_paper_equation() {
        let p = cpu();
        // E = C·V²·N = 1 · 9 · 500
        let e = p.energy(1.0, Volt::from_volts(3.0), Cycles::from_cycles(500.0));
        assert_eq!(e, Energy::from_units(4500.0));
        let e2 = p
            .energy_at_speed(
                2.0,
                Freq::from_cycles_per_ms(100.0),
                Cycles::from_cycles(10.0),
            )
            .unwrap();
        assert_eq!(e2, Energy::from_units(2.0 * 4.0 * 10.0));
    }

    #[test]
    fn execution_time_and_range_check() {
        let p = cpu();
        let t = p
            .execution_time(Volt::from_volts(3.0), Cycles::from_cycles(1000.0))
            .unwrap();
        assert!(t.approx_eq(TimeSpan::from_ms(1000.0 / 150.0), 1e-12));
        assert!(p
            .execution_time(Volt::from_volts(0.5), Cycles::from_cycles(1.0))
            .is_err());
        assert!(p.freq_at(Volt::from_volts(4.5)).is_err());
    }

    #[test]
    fn discrete_levels_round_up() {
        let table = LevelTable::new(vec![
            Volt::from_volts(1.0),
            Volt::from_volts(2.0),
            Volt::from_volts(3.0),
            Volt::from_volts(4.0),
        ])
        .unwrap();
        let p = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .build()
            .unwrap();
        // 120 cyc/ms needs 2.4 V exactly -> rounds up to 3 V.
        assert_eq!(
            p.dispatch_voltage(Freq::from_cycles_per_ms(120.0)).unwrap(),
            Volt::from_volts(3.0)
        );
        // Exactly at a level stays there.
        assert_eq!(
            p.dispatch_voltage(Freq::from_cycles_per_ms(100.0)).unwrap(),
            Volt::from_volts(2.0)
        );
    }

    #[test]
    fn continuous_dispatch_is_exact() {
        let p = cpu();
        assert_eq!(
            p.dispatch_voltage(Freq::from_cycles_per_ms(120.0)).unwrap(),
            Volt::from_volts(2.4)
        );
    }

    #[test]
    fn builder_rejects_bad_ranges_and_levels() {
        let m = || FreqModel::linear(50.0).unwrap();
        assert!(Processor::builder(m())
            .vmin(Volt::from_volts(4.0))
            .vmax(Volt::from_volts(1.0))
            .build()
            .is_err());
        assert!(Processor::builder(m()).vmin(Volt::ZERO).build().is_err());
        let outside = LevelTable::new(vec![Volt::from_volts(0.5)]).unwrap();
        assert!(Processor::builder(m())
            .discrete_levels(outside)
            .build()
            .is_err());
        let neg = TransitionOverhead {
            time: TimeSpan::from_ms(-1.0),
            energy: Energy::ZERO,
        };
        assert!(Processor::builder(m())
            .transition_overhead(neg)
            .build()
            .is_err());
    }

    #[test]
    fn critical_speed_linear_closed_form() {
        let p = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .static_power(1000.0)
            .build()
            .unwrap();
        let crit = p.critical_speed(1.0).as_cycles_per_ms();
        let expected = (50.0f64 * 50.0 * 1000.0 / 2.0).cbrt();
        assert!((crit - expected).abs() < 1e-9, "{crit} vs {expected}");
        // Heavier switching capacitance lowers the critical speed.
        assert!(p.critical_speed(4.0) < p.critical_speed(1.0));
        // Enough leakage pushes the optimum past f_max: capped.
        let hot = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmax(Volt::from_volts(4.0))
            .static_power(1e9)
            .build()
            .unwrap();
        assert_eq!(hot.critical_speed(1.0), hot.f_max());
        // No leakage: no floor.
        assert_eq!(cpu().critical_speed(1.0), Freq::ZERO);
        assert_eq!(cpu().floor_speed(1.0), cpu().f_min());
    }

    #[test]
    fn critical_speed_alpha_minimizes_per_cycle_energy() {
        let p = Processor::builder(FreqModel::alpha(120.0, Volt::from_volts(0.8), 1.6).unwrap())
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .static_power(500.0)
            .build()
            .unwrap();
        let c_eff = 1.5;
        let crit = p.critical_speed(c_eff).as_cycles_per_ms();
        let per_cycle = |f: f64| {
            let v = p
                .freq_model()
                .volt_for(Freq::from_cycles_per_ms(f))
                .as_volts();
            c_eff * v * v + p.static_power() / f
        };
        let e_crit = per_cycle(crit);
        let fmax = p.f_max().as_cycles_per_ms();
        for i in 1..200 {
            let f = fmax * i as f64 / 200.0;
            assert!(
                e_crit <= per_cycle(f) + 1e-9 * e_crit,
                "per-cycle energy at {f} beats the critical speed {crit}"
            );
        }
        assert_eq!(
            p.floor_speed(c_eff).as_cycles_per_ms(),
            crit.max(p.f_min().as_cycles_per_ms())
        );
    }

    #[test]
    fn critical_speed_caps_at_highest_servable_level() {
        // The table tops out at 3 V (150 cyc/ms) although vmax is 4 V:
        // the floor must never push dispatches past what the table can
        // serve, or every slice would saturate off-table at vmax.
        let table = LevelTable::new(vec![
            Volt::from_volts(1.0),
            Volt::from_volts(2.0),
            Volt::from_volts(3.0),
        ])
        .unwrap();
        let p = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .static_power(1e9) // continuous optimum far above f_max
            .build()
            .unwrap();
        assert!((p.critical_speed(1.0).as_cycles_per_ms() - 150.0).abs() < 1e-9);
        assert!(p.dispatch_voltage(p.critical_speed(1.0)).is_ok());
    }

    #[test]
    fn per_level_powers_alone_still_produce_a_floor() {
        // Only per-level powers declared (no scalar static_power): the
        // critical speed derives from the guaranteed (minimum) leakage
        // instead of silently degenerating to zero.
        let table = LevelTable::new(vec![Volt::from_volts(1.0), Volt::from_volts(4.0)]).unwrap();
        let p = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .level_static_power(vec![500.0, 1000.0])
            .build()
            .unwrap();
        let crit = p.critical_speed(1.0).as_cycles_per_ms();
        let expected = (50.0f64 * 50.0 * 500.0 / 2.0).cbrt();
        assert!((crit - expected).abs() < 1e-9, "{crit} vs {expected}");
        assert!(p.floor_speed(1.0) > p.f_min());
    }

    #[test]
    fn per_level_static_power_lookup() {
        let table = LevelTable::new(vec![
            Volt::from_volts(1.0),
            Volt::from_volts(2.0),
            Volt::from_volts(4.0),
        ])
        .unwrap();
        let p = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .static_power(7.0)
            .level_static_power(vec![1.0, 2.0, 3.0])
            .build()
            .unwrap();
        assert_eq!(p.static_power_at(Volt::from_volts(1.0)), 1.0);
        assert_eq!(p.static_power_at(Volt::from_volts(1.5)), 2.0);
        assert_eq!(p.static_power_at(Volt::from_volts(4.0)), 3.0);
        // Above the highest level (the engine's saturation fallback can
        // execute at vmax on a short table): charge the leakiest level,
        // never the (smaller) uniform fallback.
        assert_eq!(p.static_power_at(Volt::from_volts(4.5)), 3.0);
        // Continuous processors always use the uniform value.
        let cont = Processor::builder(FreqModel::linear(50.0).unwrap())
            .static_power(7.0)
            .build()
            .unwrap();
        assert_eq!(cont.static_power_at(Volt::from_volts(3.0)), 7.0);
    }

    #[test]
    fn builder_rejects_bad_leakage() {
        let m = || FreqModel::linear(50.0).unwrap();
        assert!(Processor::builder(m()).static_power(-1.0).build().is_err());
        assert!(Processor::builder(m())
            .idle_power(f64::NAN)
            .build()
            .is_err());
        // Per-level powers without levels, with the wrong arity, or
        // carrying negative entries are all rejected.
        assert!(Processor::builder(m())
            .level_static_power(vec![1.0])
            .build()
            .is_err());
        let table = || LevelTable::new(vec![Volt::from_volts(1.0), Volt::from_volts(4.0)]).unwrap();
        assert!(Processor::builder(m())
            .discrete_levels(table())
            .level_static_power(vec![1.0])
            .build()
            .is_err());
        assert!(Processor::builder(m())
            .discrete_levels(table())
            .level_static_power(vec![1.0, -2.0])
            .build()
            .is_err());
        assert!(Processor::builder(m())
            .discrete_levels(table())
            .level_static_power(vec![1.0, 2.0])
            .build()
            .is_ok());
    }

    #[test]
    fn alpha_processor_rejects_vmax_at_threshold() {
        let m = FreqModel::alpha(100.0, Volt::from_volts(5.0), 2.0).unwrap();
        let err = Processor::builder(m)
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("positive"));
    }
}
