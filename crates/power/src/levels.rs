//! Discrete supply-voltage levels.
//!
//! The paper assumes "the processor can use any voltage value within a
//! specified range" (§3.2); real parts expose a handful of levels
//! (cf. the paper's reference \[12\], Mochocki et al.). [`VoltageLevels`] lets the
//! simulator and the ablation benches quantize the continuous schedule to
//! a level table and measure the cost of that assumption.

use crate::error::PowerError;
use acs_model::units::Volt;

/// Continuous range or a discrete table of usable supply voltages.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum VoltageLevels {
    /// Any voltage inside the processor's `[vmin, vmax]` range.
    #[default]
    Continuous,
    /// Only the listed voltages (strictly increasing) are usable.
    Discrete(LevelTable),
}

/// A validated, strictly increasing table of voltage levels.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTable {
    levels: Vec<Volt>,
}

impl LevelTable {
    /// Builds a level table.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidLevels`] when the table is empty, contains a
    /// non-finite or non-positive entry, or is not strictly increasing.
    pub fn new(levels: Vec<Volt>) -> Result<Self, PowerError> {
        if levels.is_empty() {
            return Err(PowerError::InvalidLevels {
                reason: "level table must not be empty".into(),
            });
        }
        for w in levels.windows(2) {
            if w[0] >= w[1] {
                return Err(PowerError::InvalidLevels {
                    reason: format!(
                        "levels must be strictly increasing, got {} then {}",
                        w[0], w[1]
                    ),
                });
            }
        }
        if levels.iter().any(|v| !v.is_finite() || v.as_volts() <= 0.0) {
            return Err(PowerError::InvalidLevels {
                reason: "levels must be finite and positive".into(),
            });
        }
        Ok(LevelTable { levels })
    }

    /// The levels, lowest first.
    pub fn levels(&self) -> &[Volt] {
        &self.levels
    }

    /// Lowest level.
    pub fn lowest(&self) -> Volt {
        self.levels[0]
    }

    /// Highest level.
    pub fn highest(&self) -> Volt {
        *self.levels.last().expect("table is never empty")
    }

    /// Smallest level `≥ v`, or `None` when `v` exceeds the highest level.
    ///
    /// This is the conservative rounding the runtime uses: rounding *up*
    /// keeps every worst-case guarantee intact at the cost of some energy.
    pub fn round_up(&self, v: Volt) -> Option<Volt> {
        self.levels.iter().copied().find(|&l| l >= v)
    }

    /// Largest level `≤ v`, or `None` when `v` is below the lowest level.
    pub fn round_down(&self, v: Volt) -> Option<Volt> {
        self.levels.iter().rev().copied().find(|&l| l <= v)
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `false` always (an empty table cannot be constructed); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volts(vs: &[f64]) -> Vec<Volt> {
        vs.iter().copied().map(Volt::from_volts).collect()
    }

    #[test]
    fn builds_valid_table() {
        let t = LevelTable::new(volts(&[1.0, 2.0, 3.3])).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.lowest(), Volt::from_volts(1.0));
        assert_eq!(t.highest(), Volt::from_volts(3.3));
        assert!(!t.is_empty());
    }

    #[test]
    fn rejects_empty_and_unsorted_and_duplicates() {
        assert!(LevelTable::new(vec![]).is_err());
        assert!(LevelTable::new(volts(&[2.0, 1.0])).is_err());
        assert!(LevelTable::new(volts(&[1.0, 1.0])).is_err());
        assert!(LevelTable::new(volts(&[0.0, 1.0])).is_err());
        assert!(LevelTable::new(volts(&[f64::NAN])).is_err());
    }

    #[test]
    fn round_up_and_down() {
        let t = LevelTable::new(volts(&[1.0, 2.0, 3.0])).unwrap();
        assert_eq!(
            t.round_up(Volt::from_volts(1.5)),
            Some(Volt::from_volts(2.0))
        );
        assert_eq!(
            t.round_up(Volt::from_volts(2.0)),
            Some(Volt::from_volts(2.0))
        );
        assert_eq!(t.round_up(Volt::from_volts(3.1)), None);
        assert_eq!(
            t.round_down(Volt::from_volts(1.5)),
            Some(Volt::from_volts(1.0))
        );
        assert_eq!(t.round_down(Volt::from_volts(0.9)), None);
        assert_eq!(
            t.round_down(Volt::from_volts(9.0)),
            Some(Volt::from_volts(3.0))
        );
    }

    #[test]
    fn default_is_continuous() {
        assert_eq!(VoltageLevels::default(), VoltageLevels::Continuous);
    }
}
