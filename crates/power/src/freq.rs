//! Frequency–voltage laws (paper equations (1)–(2)).
//!
//! The paper's device model says the cycle time is
//! `t_cycle ∝ V / (V − Vth)^α`, i.e. the clock frequency is
//! `f(V) = k · (V − Vth)^α / V` for a device constant `k`, threshold
//! voltage `Vth` and process exponent `α ∈ (1, 2]`. The motivational
//! example uses the common simplification `f = κ·V` (frequency directly
//! proportional to voltage), which is the `α = 2, Vth = 0` special case.

use crate::error::PowerError;
use acs_model::units::{Freq, Volt};

/// A monotone frequency–voltage relation.
///
/// Both variants are strictly increasing on their domain, so the inverse
/// [`FreqModel::volt_for`] is well defined.
///
/// ```
/// use acs_power::FreqModel;
/// use acs_model::units::{Freq, Volt};
///
/// let lin = FreqModel::linear(50.0)?; // 50 cycles per ms per volt
/// assert_eq!(lin.freq_at(Volt::from_volts(3.0)).as_cycles_per_ms(), 150.0);
/// assert_eq!(lin.volt_for(Freq::from_cycles_per_ms(150.0)).as_volts(), 3.0);
/// # Ok::<(), acs_power::PowerError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum FreqModel {
    /// `f = κ·V`: frequency proportional to voltage. `kappa` is in
    /// cycles per millisecond per volt.
    Linear {
        /// Proportionality constant κ (cycles / (ms·V)).
        kappa: f64,
    },
    /// `f = k·(V − Vth)^α / V`: the alpha-power law.
    Alpha {
        /// Device constant `k` (cycles per millisecond at the normalization
        /// point).
        k: f64,
        /// Threshold voltage.
        vth: Volt,
        /// Velocity-saturation exponent, `1 < α ≤ 2`.
        alpha: f64,
    },
}

impl FreqModel {
    /// Creates a linear model `f = κ·V`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidModel`] if `kappa` is not finite and positive.
    pub fn linear(kappa: f64) -> Result<Self, PowerError> {
        if !(kappa.is_finite() && kappa > 0.0) {
            return Err(PowerError::InvalidModel {
                reason: format!("kappa must be finite and positive, got {kappa}"),
            });
        }
        Ok(FreqModel::Linear { kappa })
    }

    /// Creates an alpha-power-law model `f = k·(V − Vth)^α / V`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidModel`] if `k ≤ 0`, `vth < 0` or `α ∉ [1, 2]`.
    pub fn alpha(k: f64, vth: Volt, alpha: f64) -> Result<Self, PowerError> {
        if !(k.is_finite() && k > 0.0) {
            return Err(PowerError::InvalidModel {
                reason: format!("k must be finite and positive, got {k}"),
            });
        }
        if !(vth.as_volts() >= 0.0 && vth.is_finite()) {
            return Err(PowerError::InvalidModel {
                reason: format!("vth must be finite and non-negative, got {vth}"),
            });
        }
        if !(1.0..=2.0).contains(&alpha) {
            return Err(PowerError::InvalidModel {
                reason: format!("alpha must lie in [1, 2], got {alpha}"),
            });
        }
        Ok(FreqModel::Alpha { k, vth, alpha })
    }

    /// Clock frequency delivered at supply voltage `v`.
    ///
    /// For the alpha law, voltages at or below `Vth` yield zero frequency
    /// (the device does not switch).
    pub fn freq_at(&self, v: Volt) -> Freq {
        match *self {
            FreqModel::Linear { kappa } => Freq::from_cycles_per_ms(kappa * v.as_volts().max(0.0)),
            FreqModel::Alpha { k, vth, alpha } => {
                let overdrive = v.as_volts() - vth.as_volts();
                if overdrive <= 0.0 || v.as_volts() <= 0.0 {
                    Freq::ZERO
                } else {
                    Freq::from_cycles_per_ms(k * overdrive.powf(alpha) / v.as_volts())
                }
            }
        }
    }

    /// Minimum voltage delivering frequency `f` (inverse of
    /// [`FreqModel::freq_at`]).
    ///
    /// `f = 0` maps to the threshold voltage (alpha) or 0 V (linear).
    /// The inverse for the alpha law has no closed form; a
    /// bisection-safeguarded Newton iteration converges to machine
    /// precision in a handful of steps because `f` is smooth and strictly
    /// monotone above `Vth`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or non-finite (caller bug: speeds are
    /// produced by dividing validated cycles by positive windows).
    pub fn volt_for(&self, f: Freq) -> Volt {
        let target = f.as_cycles_per_ms();
        assert!(
            target.is_finite() && target >= 0.0,
            "requested frequency must be finite and non-negative, got {target}"
        );
        match *self {
            FreqModel::Linear { kappa } => Volt::from_volts(target / kappa),
            FreqModel::Alpha { vth, .. } => {
                if target == 0.0 {
                    return vth;
                }
                // Bracket the root: f is 0 at vth and grows without bound.
                let mut lo = vth.as_volts();
                let mut hi = vth.as_volts().max(1.0);
                while self.freq_at(Volt::from_volts(hi)).as_cycles_per_ms() < target {
                    hi *= 2.0;
                    assert!(hi < 1e12, "voltage bracket diverged");
                }
                // Newton with bisection fallback.
                let mut v = 0.5 * (lo + hi);
                for _ in 0..200 {
                    let fv = self.freq_at(Volt::from_volts(v)).as_cycles_per_ms() - target;
                    if fv.abs() <= 1e-12 * target.max(1.0) {
                        break;
                    }
                    if fv > 0.0 {
                        hi = v;
                    } else {
                        lo = v;
                    }
                    let dfdv = self.dfreq_dvolt(Volt::from_volts(v));
                    let newton = v - fv / dfdv;
                    v = if dfdv > 0.0 && newton > lo && newton < hi {
                        newton
                    } else {
                        0.5 * (lo + hi)
                    };
                }
                Volt::from_volts(v)
            }
        }
    }

    /// Derivative `df/dV` at voltage `v` — used by the optimizer's custom
    /// autodiff node for the voltage inversion (implicit-function rule
    /// `dV/df = 1 / (df/dV)`).
    pub fn dfreq_dvolt(&self, v: Volt) -> f64 {
        match *self {
            FreqModel::Linear { kappa } => kappa,
            FreqModel::Alpha { k, vth, alpha } => {
                let vv = v.as_volts();
                let od = vv - vth.as_volts();
                if od <= 0.0 || vv <= 0.0 {
                    0.0
                } else {
                    // d/dV [k (V-Vth)^a / V]
                    //   = k (V-Vth)^(a-1) (a V - (V - Vth)) / V^2
                    k * od.powf(alpha - 1.0) * (alpha * vv - od) / (vv * vv)
                }
            }
        }
    }

    /// Derivative `dV/df` of the inverse map at frequency `f`.
    pub fn dvolt_dfreq(&self, f: Freq) -> f64 {
        match *self {
            FreqModel::Linear { kappa } => 1.0 / kappa,
            FreqModel::Alpha { .. } => {
                let v = self.volt_for(f);
                1.0 / self.dfreq_dvolt(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_round_trip() {
        let m = FreqModel::linear(50.0).unwrap();
        for v in [0.5, 1.0, 2.0, 3.3, 5.0] {
            let f = m.freq_at(Volt::from_volts(v));
            assert!((m.volt_for(f).as_volts() - v).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_rejects_bad_kappa() {
        assert!(FreqModel::linear(0.0).is_err());
        assert!(FreqModel::linear(-1.0).is_err());
        assert!(FreqModel::linear(f64::NAN).is_err());
    }

    #[test]
    fn alpha_reduces_to_linear_at_vth0_alpha2() {
        let lin = FreqModel::linear(50.0).unwrap();
        let alp = FreqModel::alpha(50.0, Volt::ZERO, 2.0).unwrap();
        for v in [0.7, 1.0, 2.5, 4.0] {
            let fl = lin.freq_at(Volt::from_volts(v)).as_cycles_per_ms();
            let fa = alp.freq_at(Volt::from_volts(v)).as_cycles_per_ms();
            assert!((fl - fa).abs() < 1e-9, "at {v} V: {fl} vs {fa}");
        }
    }

    #[test]
    fn alpha_round_trip() {
        let m = FreqModel::alpha(120.0, Volt::from_volts(0.8), 1.6).unwrap();
        for v in [1.0, 1.5, 2.2, 3.3, 5.0] {
            let f = m.freq_at(Volt::from_volts(v));
            let back = m.volt_for(f).as_volts();
            assert!((back - v).abs() < 1e-8, "at {v} V got back {back}");
        }
    }

    #[test]
    fn alpha_below_threshold_is_zero() {
        let m = FreqModel::alpha(100.0, Volt::from_volts(1.0), 2.0).unwrap();
        assert_eq!(m.freq_at(Volt::from_volts(0.5)), Freq::ZERO);
        assert_eq!(m.freq_at(Volt::from_volts(1.0)), Freq::ZERO);
        assert_eq!(m.volt_for(Freq::ZERO), Volt::from_volts(1.0));
    }

    #[test]
    fn alpha_monotone_increasing() {
        let m = FreqModel::alpha(100.0, Volt::from_volts(0.6), 1.4).unwrap();
        let mut prev = -1.0;
        for i in 0..200 {
            let v = 0.61 + 0.02 * i as f64;
            let f = m.freq_at(Volt::from_volts(v)).as_cycles_per_ms();
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn alpha_rejects_bad_params() {
        assert!(FreqModel::alpha(0.0, Volt::ZERO, 2.0).is_err());
        assert!(FreqModel::alpha(1.0, Volt::from_volts(-0.1), 2.0).is_err());
        assert!(FreqModel::alpha(1.0, Volt::ZERO, 0.9).is_err());
        assert!(FreqModel::alpha(1.0, Volt::ZERO, 2.1).is_err());
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let models = [
            FreqModel::linear(50.0).unwrap(),
            FreqModel::alpha(120.0, Volt::from_volts(0.8), 1.6).unwrap(),
            FreqModel::alpha(80.0, Volt::from_volts(0.4), 2.0).unwrap(),
        ];
        for m in &models {
            for v in [1.2, 2.0, 3.7] {
                let h = 1e-6;
                let f1 = m.freq_at(Volt::from_volts(v - h)).as_cycles_per_ms();
                let f2 = m.freq_at(Volt::from_volts(v + h)).as_cycles_per_ms();
                let fd = (f2 - f1) / (2.0 * h);
                let an = m.dfreq_dvolt(Volt::from_volts(v));
                assert!(
                    (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                    "{m:?} at {v}: fd={fd} an={an}"
                );
            }
        }
    }

    #[test]
    fn inverse_derivative_matches_finite_difference() {
        let m = FreqModel::alpha(120.0, Volt::from_volts(0.8), 1.6).unwrap();
        for f in [20.0, 60.0, 110.0] {
            let h = 1e-4;
            let v1 = m.volt_for(Freq::from_cycles_per_ms(f - h)).as_volts();
            let v2 = m.volt_for(Freq::from_cycles_per_ms(f + h)).as_volts();
            let fd = (v2 - v1) / (2.0 * h);
            let an = m.dvolt_dfreq(Freq::from_cycles_per_ms(f));
            assert!(
                (fd - an).abs() < 1e-5 * an.abs().max(1.0),
                "f={f}: {fd} vs {an}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_frequency_panics() {
        let m = FreqModel::linear(50.0).unwrap();
        let _ = m.volt_for(Freq::from_cycles_per_ms(-1.0));
    }
}
