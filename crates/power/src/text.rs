//! Plain-text persistence for [`Processor`] artifacts.
//!
//! Versioned, line-oriented and diff-able like the schedule export in
//! `acs-core` and the task-set export in `acs-model`. One `key value...`
//! directive per line; `levels` and `overhead` are optional:
//!
//! ```text
//! acsched-processor v1
//! model linear 50
//! vmin 0.3
//! vmax 4
//! levels 1 2 3 4
//! overhead 0.001 1
//! ```
//!
//! The alpha-power law serializes as `model alpha <k> <vth> <alpha>`.
//! Numbers use Rust's shortest round-trip `f64` formatting, so
//! `from_text(&to_text(cpu))` reproduces the processor exactly.
//!
//! The leakage directives (`static_power`, `idle_power`,
//! `level_static_power`) are additive within `v1` — the documented
//! evolution path for these artifacts: pre-leakage files parse
//! unchanged, and files using the new directives fail loudly on old
//! parsers via the unrecognized-directive error. (The scenario format
//! bumped to `v2` instead because its additions change campaign
//! *semantics*, not just the hardware description.)

use crate::error::PowerError;
use crate::freq::FreqModel;
use crate::levels::{LevelTable, VoltageLevels};
use crate::processor::{Processor, TransitionOverhead};
use acs_model::units::{Energy, TimeSpan, Volt};

/// Serializes a processor to the v1 text format.
pub fn to_text(cpu: &Processor) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "acsched-processor v1");
    match cpu.freq_model() {
        FreqModel::Linear { kappa } => {
            let _ = writeln!(out, "model linear {kappa}");
        }
        FreqModel::Alpha { k, vth, alpha } => {
            let _ = writeln!(out, "model alpha {k} {} {alpha}", vth.as_volts());
        }
    }
    let _ = writeln!(out, "vmin {}", cpu.vmin().as_volts());
    let _ = writeln!(out, "vmax {}", cpu.vmax().as_volts());
    if let VoltageLevels::Discrete(table) = cpu.levels() {
        let levels: Vec<String> = table
            .levels()
            .iter()
            .map(|v| v.as_volts().to_string())
            .collect();
        let _ = writeln!(out, "levels {}", levels.join(" "));
    }
    let overhead = cpu.overhead();
    if overhead != TransitionOverhead::NONE {
        let _ = writeln!(
            out,
            "overhead {} {}",
            overhead.time.as_ms(),
            overhead.energy.as_units()
        );
    }
    if cpu.static_power() > 0.0 {
        let _ = writeln!(out, "static_power {}", cpu.static_power());
    }
    if cpu.idle_power() > 0.0 {
        let _ = writeln!(out, "idle_power {}", cpu.idle_power());
    }
    if let Some(powers) = cpu.level_static_power() {
        let joined: Vec<String> = powers.iter().map(f64::to_string).collect();
        let _ = writeln!(out, "level_static_power {}", joined.join(" "));
    }
    out
}

/// Parses a v1 text artifact back into a processor.
///
/// # Errors
///
/// [`PowerError::InvalidModel`] (with a `parse:`-prefixed reason) on any
/// syntax error — wrong header, unknown or repeated directive, malformed
/// numbers — and the usual builder errors when the parsed values violate
/// processor invariants.
pub fn from_text(text: &str) -> Result<Processor, PowerError> {
    let bad = |reason: String| PowerError::InvalidModel {
        reason: format!("parse: {reason}"),
    };
    let parse_f = |s: &str| -> Result<f64, PowerError> {
        let v: f64 = s.parse().map_err(|_| bad(format!("bad number `{s}`")))?;
        if !v.is_finite() {
            return Err(bad(format!("non-finite number `{s}`")));
        }
        Ok(v)
    };
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));

    let header = lines.next().ok_or_else(|| bad("empty artifact".into()))?;
    if header != "acsched-processor v1" {
        return Err(bad(format!("unsupported header `{header}`")));
    }

    let mut model: Option<FreqModel> = None;
    let mut vmin: Option<f64> = None;
    let mut vmax: Option<f64> = None;
    let mut levels: Option<Vec<f64>> = None;
    let mut overhead: Option<(f64, f64)> = None;
    let mut static_power: Option<f64> = None;
    let mut idle_power: Option<f64> = None;
    let mut level_static_power: Option<Vec<f64>> = None;
    for line in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        let dup = |key: &str| bad(format!("duplicate directive `{key}`"));
        match fields.as_slice() {
            ["model", "linear", kappa] => {
                if model.is_some() {
                    return Err(dup("model"));
                }
                model = Some(FreqModel::linear(parse_f(kappa)?)?);
            }
            ["model", "alpha", k, vth, alpha] => {
                if model.is_some() {
                    return Err(dup("model"));
                }
                model = Some(FreqModel::alpha(
                    parse_f(k)?,
                    Volt::from_volts(parse_f(vth)?),
                    parse_f(alpha)?,
                )?);
            }
            ["vmin", v] => {
                if vmin.replace(parse_f(v)?).is_some() {
                    return Err(dup("vmin"));
                }
            }
            ["vmax", v] => {
                if vmax.replace(parse_f(v)?).is_some() {
                    return Err(dup("vmax"));
                }
            }
            ["levels", rest @ ..] if !rest.is_empty() => {
                let parsed: Vec<f64> = rest.iter().map(|s| parse_f(s)).collect::<Result<_, _>>()?;
                if levels.replace(parsed).is_some() {
                    return Err(dup("levels"));
                }
            }
            ["overhead", time_ms, energy] => {
                if overhead
                    .replace((parse_f(time_ms)?, parse_f(energy)?))
                    .is_some()
                {
                    return Err(dup("overhead"));
                }
            }
            ["static_power", p] => {
                if static_power.replace(parse_f(p)?).is_some() {
                    return Err(dup("static_power"));
                }
            }
            ["idle_power", p] => {
                if idle_power.replace(parse_f(p)?).is_some() {
                    return Err(dup("idle_power"));
                }
            }
            ["level_static_power", rest @ ..] if !rest.is_empty() => {
                let parsed: Vec<f64> = rest.iter().map(|s| parse_f(s)).collect::<Result<_, _>>()?;
                if level_static_power.replace(parsed).is_some() {
                    return Err(dup("level_static_power"));
                }
            }
            _ => return Err(bad(format!("unrecognized directive `{line}`"))),
        }
    }

    let model = model.ok_or_else(|| bad("missing `model` directive".into()))?;
    let vmin = vmin.ok_or_else(|| bad("missing `vmin` directive".into()))?;
    let vmax = vmax.ok_or_else(|| bad("missing `vmax` directive".into()))?;
    let mut builder = Processor::builder(model)
        .vmin(Volt::from_volts(vmin))
        .vmax(Volt::from_volts(vmax));
    if let Some(levels) = levels {
        let table = LevelTable::new(levels.into_iter().map(Volt::from_volts).collect())?;
        builder = builder.discrete_levels(table);
    }
    if let Some((time_ms, energy)) = overhead {
        builder = builder.transition_overhead(TransitionOverhead {
            time: TimeSpan::from_ms(time_ms),
            energy: Energy::from_units(energy),
        });
    }
    if let Some(p) = static_power {
        builder = builder.static_power(p);
    }
    if let Some(p) = idle_power {
        builder = builder.idle_power(p);
    }
    if let Some(powers) = level_static_power {
        builder = builder.level_static_power(powers);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_cpu() -> Processor {
        Processor::builder(FreqModel::alpha(120.0, Volt::from_volts(0.8), 1.6).unwrap())
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(
                LevelTable::new(vec![
                    Volt::from_volts(1.5),
                    Volt::from_volts(2.5),
                    Volt::from_volts(4.0),
                ])
                .unwrap(),
            )
            .transition_overhead(TransitionOverhead {
                time: TimeSpan::from_ms(0.001),
                energy: Energy::from_units(1.25),
            })
            .static_power(12.5)
            .idle_power(0.5)
            .level_static_power(vec![4.0, 8.0, 12.5])
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_is_exact() {
        for cpu in [
            Processor::builder(FreqModel::linear(50.0).unwrap())
                .vmin(Volt::from_volts(0.3))
                .vmax(Volt::from_volts(4.0))
                .build()
                .unwrap(),
            full_cpu(),
        ] {
            let text = to_text(&cpu);
            let back = from_text(&text).unwrap();
            assert_eq!(cpu, back);
            assert_eq!(text, to_text(&back));
        }
    }

    #[test]
    fn format_is_stable() {
        let text = to_text(&full_cpu());
        assert_eq!(
            text,
            "acsched-processor v1\nmodel alpha 120 0.8 1.6\nvmin 1\nvmax 4\n\
             levels 1.5 2.5 4\noverhead 0.001 1.25\nstatic_power 12.5\n\
             idle_power 0.5\nlevel_static_power 4 8 12.5\n"
        );
        // Optional directives are omitted for a plain continuous CPU.
        let plain = Processor::builder(FreqModel::linear(50.0).unwrap())
            .build()
            .unwrap();
        assert_eq!(
            to_text(&plain),
            "acsched-processor v1\nmodel linear 50\nvmin 1\nvmax 4\n"
        );
    }

    #[test]
    fn rejects_corruption() {
        let text = to_text(&full_cpu());
        assert!(from_text(&text.replace("v1", "v9")).is_err());
        assert!(from_text(&text.replace("model alpha", "model gamma")).is_err());
        assert!(from_text(&text.replace("vmin 1", "vmin one")).is_err());
        assert!(from_text(&text.replace("vmin 1", "vmin inf")).is_err());
        assert!(from_text(&format!("{text}vmax 5\n")).is_err()); // duplicate
        assert!(from_text("acsched-processor v1\nmodel linear 50\nvmin 0.3\n").is_err());
        assert!(from_text("").is_err());
        // Builder invariants still apply: levels outside [vmin, vmax].
        assert!(from_text(&text.replace("levels 1.5", "levels 0.5")).is_err());
    }
}
