//! Criterion bench P2: one ACS objective + gradient evaluation (the
//! solver's inner-loop unit of work).

use acs_core::{ObjectiveKind, ScheduleProblem};
use acs_model::units::Freq;
use acs_opt::problem::ConstrainedProblem;
use acs_opt::tape::Graph;
use acs_preempt::FullyPreemptiveSchedule;
use acs_workloads::{cnc, gap};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_gradient(c: &mut Criterion) {
    let fmax = Freq::from_cycles_per_ms(200.0);
    let cpu = acs_power::Processor::builder(acs_power::FreqModel::linear(50.0).unwrap())
        .vmin(acs_model::units::Volt::from_volts(0.3))
        .vmax(acs_model::units::Volt::from_volts(4.0))
        .build()
        .unwrap();

    let mut g = c.benchmark_group("objective_gradient");
    for (name, set) in [
        ("cnc_64", cnc(fmax, 0.5, 0.7).unwrap()),
        ("gap_680", gap(fmax, 0.5, 0.7).unwrap()),
    ] {
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let problem = ScheduleProblem::new(&set, &cpu, &fps, ObjectiveKind::AcecTrace);
        let x0 = problem.initial_point();
        g.bench_function(name, |b| {
            b.iter(|| {
                let graph = Graph::with_capacity(x0.len() * 16);
                let xs: Vec<_> = x0.iter().map(|&v| graph.input(v)).collect();
                let exprs = problem.build(&graph, &xs, 1e-3);
                let grads = graph.gradient(exprs.objective);
                black_box(grads.wrt(xs[0]))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gradient);
criterion_main!(benches);
