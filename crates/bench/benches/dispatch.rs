//! Criterion bench P5: the dispatch hot path after the trait redesign.
//!
//! Measures (a) the pure per-dispatch cost — trait-object `on_dispatch`
//! call vs the pre-0.2 enum-match equivalent and vs static dispatch —
//! and (b) whole-simulation throughput through the boxed-policy engine,
//! so regressions from the dynamic-dispatch migration stay visible.

use acs_core::{synthesize_wcs, SynthesisOptions};
use acs_model::units::{Cycles, Freq, Ticks, Time, Volt};
use acs_model::{Task, TaskId, TaskSet};
use acs_power::{FreqModel, Processor};
use acs_sim::{DispatchContext, GreedyReclaim, Policy, SimOptions, Simulator};
use acs_workloads::{cnc, TaskWorkloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The old closed dispatch, reconstructed for comparison: a direct match
/// over a copyable enum, no indirection.
#[derive(Clone, Copy)]
enum EnumPolicy {
    NoDvs,
    StaticSpeed,
    GreedyReclaim,
}

fn enum_dispatch(policy: EnumPolicy, ctx: &DispatchContext<'_>) -> Freq {
    match policy {
        EnumPolicy::NoDvs => ctx.cpu.f_max(),
        EnumPolicy::StaticSpeed => ctx.static_speed,
        EnumPolicy::GreedyReclaim => {
            let window = ctx.chunk_end - ctx.now;
            if window.as_ms() <= 0.0 {
                ctx.cpu.f_max()
            } else {
                ctx.chunk_budget_remaining / window
            }
        }
    }
}

fn fixture() -> (TaskSet, Processor) {
    let set = TaskSet::new(vec![Task::builder("t", Ticks::new(10))
        .wcec(Cycles::from_cycles(400.0))
        .acec(Cycles::from_cycles(150.0))
        .bcec(Cycles::from_cycles(40.0))
        .build()
        .unwrap()])
    .unwrap();
    let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap();
    (set, cpu)
}

fn bench_dispatch(c: &mut Criterion) {
    let (set, cpu) = fixture();
    let ctx = DispatchContext {
        set: &set,
        cpu: &cpu,
        task: TaskId(0),
        now: Time::from_ms(2.0),
        chunk_end: Time::from_ms(6.0),
        chunk_budget_remaining: Cycles::from_cycles(200.0),
        static_speed: Freq::from_cycles_per_ms(77.0),
        sub: None,
    };

    let mut g = c.benchmark_group("dispatch");
    // The hot-path comparison: one speed decision.
    let mut boxed: Box<dyn Policy> = Box::new(GreedyReclaim);
    g.bench_function("trait_object_greedy", |b| {
        b.iter(|| boxed.on_dispatch(black_box(&ctx)))
    });
    g.bench_function("enum_match_greedy", |b| {
        b.iter(|| enum_dispatch(black_box(EnumPolicy::GreedyReclaim), black_box(&ctx)))
    });
    let mut concrete = GreedyReclaim;
    g.bench_function("static_dispatch_greedy", |b| {
        b.iter(|| concrete.on_dispatch(black_box(&ctx)))
    });
    g.bench_function("enum_match_static", |b| {
        b.iter(|| enum_dispatch(black_box(EnumPolicy::StaticSpeed), black_box(&ctx)))
    });
    g.bench_function("enum_match_nodvs", |b| {
        b.iter(|| enum_dispatch(black_box(EnumPolicy::NoDvs), black_box(&ctx)))
    });
    g.finish();

    // End-to-end: the whole engine through the boxed policy (the number
    // that actually matters for experiment throughput).
    let fmax = Freq::from_cycles_per_ms(200.0);
    let cnc_set = cnc(fmax, 0.1, 0.7).unwrap();
    let schedule = synthesize_wcs(&cnc_set, &cpu, &SynthesisOptions::quick()).unwrap();
    let mut g = c.benchmark_group("engine");
    g.bench_function("greedy_cnc_20hp_boxed", |b| {
        b.iter(|| {
            let mut draws = TaskWorkloads::paper(&cnc_set, 11);
            let out = Simulator::new(&cnc_set, &cpu, GreedyReclaim)
                .with_schedule(&schedule)
                .with_options(SimOptions {
                    hyper_periods: 20,
                    deadline_tol_ms: 1e-3,
                    ..Default::default()
                })
                .run(&mut |t, i| draws.draw(t, i))
                .unwrap();
            black_box(out.report.energy)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
