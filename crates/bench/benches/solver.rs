//! Criterion bench P3: end-to-end schedule synthesis.

use acs_core::{synthesize_acs, synthesize_wcs, SynthesisOptions};
use acs_model::units::Freq;
use acs_workloads::{cnc, motivation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let (moto_set, moto_cpu) = motivation();
    let fmax = Freq::from_cycles_per_ms(200.0);
    let cnc_set = cnc(fmax, 0.5, 0.7).unwrap();
    let cnc_cpu = acs_power::Processor::builder(acs_power::FreqModel::linear(50.0).unwrap())
        .vmin(acs_model::units::Volt::from_volts(0.3))
        .vmax(acs_model::units::Volt::from_volts(4.0))
        .build()
        .unwrap();
    let quick = SynthesisOptions::quick();

    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);
    g.bench_function("acs_motivation_3subs", |b| {
        b.iter(|| synthesize_acs(black_box(&moto_set), &moto_cpu, &quick).unwrap())
    });
    g.bench_function("wcs_cnc_64subs", |b| {
        b.iter(|| synthesize_wcs(black_box(&cnc_set), &cnc_cpu, &quick).unwrap())
    });
    g.bench_function("acs_cnc_64subs", |b| {
        b.iter(|| synthesize_acs(black_box(&cnc_set), &cnc_cpu, &quick).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
