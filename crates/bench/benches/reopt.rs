//! Criterion bench P6: boundary re-solve cost of the `ReOpt` policy.
//!
//! The online re-optimization is only viable when each boundary solve is
//! cheap, so this bench tracks the three cost tiers on the CNC
//! controller set (64 sub-instances):
//!
//! * `warm_h16` — the production configuration: warm-started from the
//!   static schedule's projected ends, receding horizon of 16. This is
//!   what `ReOpt` pays on a cache miss.
//! * `warm_full` — warm-started, no horizon (all live end times).
//! * `cold_full` — a cold solve: schedule-oblivious starting point and
//!   the iteration budget needed to reach feasibility from scratch.
//!
//! The acceptance bar is `warm_h16` ≥ 5× faster than `cold_full`; in
//! practice the gap is well over an order of magnitude (and a solver
//! cache hit costs microseconds on top).

use acs_core::reopt::{
    cold_start_ends_ms, synthesize_remaining, synthesize_remaining_from, InstanceProgress,
    RemainingInstance, ReoptOptions,
};
use acs_core::{synthesize_wcs, SynthesisOptions};
use acs_model::units::{Cycles, Time, Volt};
use acs_model::TaskId;
use acs_power::{FreqModel, Processor};
use acs_preempt::InstanceId;
use acs_workloads::cnc;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn boundary_fixture() -> RemainingInstance {
    let cpu = Processor::builder(FreqModel::linear(50.0).expect("kappa > 0"))
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .expect("valid processor");
    let set = cnc(cpu.f_max(), 0.1, 0.7).expect("CNC set");
    let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).expect("WCS schedule");
    // A representative mid-run boundary: the first instances of the two
    // highest-priority tasks completed at their average workloads.
    let progress: Vec<InstanceProgress> = [0usize, 1]
        .iter()
        .map(|&i| {
            let t = &set.tasks()[i];
            InstanceProgress {
                instance: InstanceId {
                    task: TaskId(i),
                    index: 0,
                },
                executed: t.acec(),
                current_chunk: 0,
                chunk_budget_left: Cycles::from_cycles(t.wcec().as_cycles() - t.acec().as_cycles()),
                released: true,
                done: true,
            }
        })
        .collect();
    let now = set.hyper_period().get() as f64 / 48.0;
    RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(now), &progress)
}

fn bench_reopt(c: &mut Criterion) {
    let rem = boundary_fixture();
    let mut g = c.benchmark_group("reopt_boundary");
    let warm16 = rem.clone().with_horizon(16);
    g.bench_function("warm_h16", |b| {
        b.iter(|| synthesize_remaining(black_box(&warm16), &ReoptOptions::default()))
    });
    g.bench_function("warm_full", |b| {
        b.iter(|| synthesize_remaining(black_box(&rem), &ReoptOptions::default()))
    });
    g.bench_function("cold_full", |b| {
        b.iter(|| {
            synthesize_remaining_from(
                black_box(&rem),
                &cold_start_ends_ms(&rem),
                &ReoptOptions::cold(),
            )
        })
    });
    g.finish();

    // Context costs around a cache miss: building the remaining
    // formulation and checking/valuing a candidate exactly.
    let ends = rem.warm_ends_ms();
    let mut g = c.benchmark_group("reopt_support");
    g.bench_function("warm_projection", |b| {
        b.iter(|| black_box(&rem).warm_ends_ms())
    });
    g.bench_function("feasibility_gate", |b| {
        b.iter(|| black_box(&rem).feasible(black_box(&ends), 1e-5))
    });
    g.bench_function("energy_model", |b| {
        b.iter(|| black_box(&rem).energy_of(black_box(&ends)))
    });
    g.finish();
}

criterion_group!(benches, bench_reopt);
criterion_main!(benches);
