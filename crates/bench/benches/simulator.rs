//! Criterion bench P4: event-driven simulator throughput.

use acs_core::{synthesize_wcs, SynthesisOptions};
use acs_model::units::Freq;
use acs_sim::{DvsPolicy, SimOptions, Simulator};
use acs_workloads::{cnc, TaskWorkloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let fmax = Freq::from_cycles_per_ms(200.0);
    let set = cnc(fmax, 0.1, 0.7).unwrap();
    let cpu = acs_power::Processor::builder(acs_power::FreqModel::linear(50.0).unwrap())
        .vmin(acs_model::units::Volt::from_volts(0.3))
        .vmax(acs_model::units::Volt::from_volts(4.0))
        .build()
        .unwrap();
    let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();

    let mut g = c.benchmark_group("simulator");
    for (name, policy) in [
        ("greedy_cnc_100hp", DvsPolicy::GreedyReclaim),
        ("nodvs_cnc_100hp", DvsPolicy::NoDvs),
        ("ccrm_cnc_100hp", DvsPolicy::CcRm),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut draws = TaskWorkloads::paper(&set, 11);
                let mut sim = Simulator::new(&set, &cpu, policy).with_options(SimOptions {
                    hyper_periods: 100,
                    deadline_tol_ms: 1e-3,
                    ..Default::default()
                });
                if policy.needs_schedule() {
                    sim = sim.with_schedule(&schedule);
                }
                black_box(sim.run(&mut |t, i| draws.draw(t, i)).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
