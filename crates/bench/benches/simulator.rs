//! Criterion bench P4: event-driven simulator throughput.

use acs_core::{synthesize_wcs, SynthesisOptions};
use acs_model::units::Freq;
use acs_sim::{CcRm, GreedyReclaim, NoDvs, Policy, SimOptions, Simulator};
use acs_workloads::{cnc, TaskWorkloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

type PolicyFactory = fn() -> Box<dyn Policy>;

fn bench_simulator(c: &mut Criterion) {
    let fmax = Freq::from_cycles_per_ms(200.0);
    let set = cnc(fmax, 0.1, 0.7).unwrap();
    let cpu = acs_power::Processor::builder(acs_power::FreqModel::linear(50.0).unwrap())
        .vmin(acs_model::units::Volt::from_volts(0.3))
        .vmax(acs_model::units::Volt::from_volts(4.0))
        .build()
        .unwrap();
    let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();

    let policies: [(&str, PolicyFactory); 3] = [
        ("greedy_cnc_100hp", || Box::new(GreedyReclaim)),
        ("nodvs_cnc_100hp", || Box::new(NoDvs)),
        ("ccrm_cnc_100hp", || Box::new(CcRm::new())),
    ];
    let mut g = c.benchmark_group("simulator");
    for (name, make) in policies {
        g.bench_function(name, |b| {
            b.iter(|| {
                let policy = make();
                let mut draws = TaskWorkloads::paper(&set, 11);
                let needs_schedule = policy.needs_schedule();
                let mut sim = Simulator::new(&set, &cpu, policy).with_options(SimOptions {
                    hyper_periods: 100,
                    deadline_tol_ms: 1e-3,
                    ..Default::default()
                });
                if needs_schedule {
                    sim = sim.with_schedule(&schedule);
                }
                black_box(sim.run(&mut |t, i| draws.draw(t, i)).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
