//! Criterion bench P6: `Campaign` throughput — runs/second across a
//! 100-cell grid, at 1 thread and at full parallelism, so the scaling of
//! the experiment runner is tracked alongside the simulator itself.

use acs_model::units::Freq;
use acs_runtime::{Campaign, CampaignBuilder, PolicySpec, ScheduleChoice, WorkloadSpec};
use acs_workloads::{generate, RandomSetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn hundred_cell_builder() -> CampaignBuilder {
    let fmax = Freq::from_cycles_per_ms(200.0);
    let cfg = RandomSetConfig::paper(3, 0.1, fmax);
    let cpu = acs_power::Processor::builder(acs_power::FreqModel::linear(50.0).unwrap())
        .vmin(acs_model::units::Volt::from_volts(0.3))
        .vmax(acs_model::units::Volt::from_volts(4.0))
        .build()
        .unwrap();
    let mut builder = Campaign::builder()
        .processor("linear", cpu)
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .policy(PolicySpec::static_speed())
        .policy(PolicySpec::ccrm())
        .workload(WorkloadSpec::Paper)
        .seeds([1, 2])
        .hyper_periods(5);
    // 5 sets x (2 scheduled x 2 schedules + 1 unscheduled) x ... = 100
    // cells with 4 workload/policy tweaks; 20 sets keeps it exact:
    // 20 x (2x2 + 1) = 100 cells.
    for i in 0..20u64 {
        let set = generate(&cfg, &mut StdRng::seed_from_u64(500 + i)).unwrap();
        builder = builder.task_set(format!("set{i:02}"), set);
    }
    builder
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(3);
    for (name, threads) in [("grid100_1thread", 1), ("grid100_parallel", 0)] {
        let builder = hundred_cell_builder();
        let campaign = if threads == 0 {
            builder.build().unwrap()
        } else {
            builder.threads(threads).build().unwrap()
        };
        assert_eq!(campaign.cell_count(), 100);
        let runs = campaign.run_count();
        g.bench_function(name, |b| b.iter(|| black_box(campaign.run())));
        eprintln!("  ({name}: {runs} simulator runs per iteration)");
    }
    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
