//! Criterion bench P1: fully preemptive expansion throughput.

use acs_model::units::Freq;
use acs_preempt::FullyPreemptiveSchedule;
use acs_workloads::{cnc, gap, generate, RandomSetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_expansion(c: &mut Criterion) {
    let fmax = Freq::from_cycles_per_ms(200.0);
    let cnc_set = cnc(fmax, 0.5, 0.7).unwrap();
    let gap_set = gap(fmax, 0.5, 0.7).unwrap();
    let rand_set = generate(
        &RandomSetConfig::paper(10, 0.5, fmax),
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();

    let mut g = c.benchmark_group("expansion");
    g.bench_function("cnc_64_subs", |b| {
        b.iter(|| FullyPreemptiveSchedule::expand(black_box(&cnc_set)).unwrap())
    });
    g.bench_function("gap_680_subs", |b| {
        b.iter(|| FullyPreemptiveSchedule::expand(black_box(&gap_set)).unwrap())
    });
    g.bench_function("random10", |b| {
        b.iter(|| FullyPreemptiveSchedule::expand(black_box(&rand_set)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
