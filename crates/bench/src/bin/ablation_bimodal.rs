//! **Ablation A4** — workload *shape* sensitivity.
//!
//! The paper's abstract motivates ACS with tasks that "normally require a
//! small number of cycles but occasionally a large number". Its
//! experiments, however, use a truncated normal. This ablation compares
//! the ACS-over-WCS improvement under three shapes with identical
//! support `[BCEC, WCEC]`: the paper's truncated normal, a uniform, and
//! a bimodal common-case/rare-worst-case mixture — quantifying how much
//! of the gain comes from the *shape* versus the *spread* of workloads.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin ablation_bimodal
//! ```

use acs_bench::{standard_cpu, Scale};
use acs_core::{synthesize_acs_best, synthesize_wcs, SynthesisOptions};
use acs_sim::{improvement_over, GreedyReclaim, SimOptions, Simulator, Summary};
use acs_workloads::{generate, RandomSetConfig, TaskWorkloads, WorkloadDist};
use rand::rngs::StdRng;
use rand::SeedableRng;

type ShapeFn = fn(&acs_model::Task) -> WorkloadDist;

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    let opts = SynthesisOptions::default();
    println!(
        "Ablation A4: ACS-over-WCS % improvement by workload shape \
         (6-task sets, ratio 0.1; {} sets x {} hyper-periods)\n",
        scale.task_sets, scale.hyper_periods
    );

    let shapes: [(&str, ShapeFn); 3] = [
        ("truncated normal (paper)", WorkloadDist::paper_normal),
        ("uniform [BCEC, WCEC]", |t| WorkloadDist::Uniform {
            lo: t.bcec().as_cycles(),
            hi: t.wcec().as_cycles(),
        }),
        // 10% worst case, 90% best case: heavy-tailed "occasional large".
        ("bimodal 90/10", |t| WorkloadDist::Bimodal {
            lo: t.bcec().as_cycles(),
            hi: t.wcec().as_cycles(),
            p_heavy: 0.1,
        }),
    ];

    let mut summaries = vec![Summary::new(); shapes.len()];
    let mut misses = vec![0usize; shapes.len()];
    for set_idx in 0..scale.task_sets {
        let seed = scale.seed + set_idx as u64;
        let cfg = RandomSetConfig::paper(6, 0.1, cpu.f_max());
        let Ok(set) = generate(&cfg, &mut StdRng::seed_from_u64(seed)) else {
            continue;
        };
        let Ok(wcs) = synthesize_wcs(&set, &cpu, &opts) else {
            continue;
        };
        let Ok(acs) = synthesize_acs_best(&set, &cpu, &opts, &wcs) else {
            continue;
        };
        for (i, (_, make_dist)) in shapes.iter().enumerate() {
            let dists: Vec<WorkloadDist> = set.tasks().iter().map(make_dist).collect();
            let mut energies = [0.0f64; 2];
            for (j, schedule) in [&wcs, &acs].into_iter().enumerate() {
                let mut draws = TaskWorkloads::from_dists(dists.clone(), seed ^ 0xA4);
                let out = Simulator::new(&set, &cpu, GreedyReclaim)
                    .with_schedule(schedule)
                    .with_options(SimOptions {
                        hyper_periods: scale.hyper_periods,
                        deadline_tol_ms: 1e-3,
                        ..Default::default()
                    })
                    .run(&mut |t, k| draws.draw(t, k))
                    .expect("simulation runs");
                energies[j] = out.report.energy.as_units();
                misses[i] += out.report.deadline_misses;
            }
            summaries[i].push(
                100.0
                    * improvement_over(
                        acs_model::units::Energy::from_units(energies[0]),
                        acs_model::units::Energy::from_units(energies[1]),
                    ),
            );
        }
    }

    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "workload shape", "mean", "std", "misses"
    );
    for ((name, _), (s, m)) in shapes.iter().zip(summaries.iter().zip(&misses)) {
        println!(
            "{:<28} {:>9.1}% {:>8.1} {:>8}",
            name,
            s.mean(),
            s.std_dev(),
            m
        );
    }
    println!(
        "\nNote: the schedules are synthesized against the ACEC (normal-shape
mean); the bimodal row therefore measures robustness to a mis-specified
shape with the same support. Deadline safety is shape-independent."
    );
}
