//! **Figure 6(a)** — energy improvement of ACS over WCS on random task
//! sets, as a function of task count and workload flexibility.
//!
//! Paper protocol (§4): for each task count `N ∈ {2,4,6,8,10}` and
//! `BCEC/WCEC ∈ {0.1, 0.5, 0.9}`, generate 100 random task sets (periods
//! 10–30 ms, 70% worst-case utilization at `f_max`, ≤ 1000
//! sub-instances), simulate 1000 hyper-periods of truncated-normal
//! workloads under greedy DVS, and report the percentage runtime-energy
//! improvement of the ACS schedule over the WCS schedule.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin fig6a_random            # reduced scale
//! ACS_PAPER_SCALE=1 cargo run --release -p acs-bench --bin fig6a_random
//! ```

use acs_bench::{compare_acs_wcs, standard_cpu, Scale};
use acs_core::SynthesisOptions;
use acs_sim::Summary;
use acs_workloads::{generate, RandomSetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    let opts = SynthesisOptions::default();
    const TASK_COUNTS: [usize; 5] = [2, 4, 6, 8, 10];
    const RATIOS: [f64; 3] = [0.1, 0.5, 0.9];

    println!(
        "Figure 6(a): % runtime-energy improvement of ACS over WCS \
         ({} sets x {} hyper-periods per cell; paper: 100 x 1000)\n",
        scale.task_sets, scale.hyper_periods
    );
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "#tasks", "BCEC/WCEC=0.1", "BCEC/WCEC=0.5", "BCEC/WCEC=0.9"
    );

    let mut failures = 0usize;
    for (row, &n) in TASK_COUNTS.iter().enumerate() {
        let mut cells = Vec::new();
        for (col, &ratio) in RATIOS.iter().enumerate() {
            let mut summary = Summary::new();
            let mut misses = 0usize;
            for set_idx in 0..scale.task_sets {
                let seed = scale.seed
                    + (row as u64) * 1_000_000
                    + (col as u64) * 10_000
                    + set_idx as u64;
                let cfg = RandomSetConfig::paper(n, ratio, cpu.f_max());
                let mut rng = StdRng::seed_from_u64(seed);
                let set = match generate(&cfg, &mut rng) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("  [n={n} ratio={ratio} set={set_idx}] generation: {e}");
                        failures += 1;
                        continue;
                    }
                };
                match compare_acs_wcs(&set, &cpu, &opts, scale.hyper_periods, seed ^ 0xACE5) {
                    Ok(c) => {
                        summary.push(100.0 * c.improvement);
                        misses += c.misses;
                    }
                    Err(e) => {
                        eprintln!("  [n={n} ratio={ratio} set={set_idx}] {e}");
                        failures += 1;
                    }
                }
            }
            assert_eq!(misses, 0, "hard deadlines must hold");
            cells.push(format!(
                "{:>6.1}% ±{:>4.1}",
                summary.mean(),
                summary.std_dev()
            ));
        }
        println!("{:>8} {:>16} {:>16} {:>16}", n, cells[0], cells[1], cells[2]);
    }
    println!(
        "\nPaper's reported shape: improvement grows with task count; \
         ≈60% at (10 tasks, ratio 0.1); ≈0 at ratio 0.9. Failures: {failures}."
    );
}
