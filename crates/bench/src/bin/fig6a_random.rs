//! **Figure 6(a)** — energy improvement of ACS over WCS on random task
//! sets, as a function of task count and workload flexibility.
//!
//! Paper protocol (§4): for each task count `N ∈ {2,4,6,8,10}` and
//! `BCEC/WCEC ∈ {0.1, 0.5, 0.9}`, generate random task sets (periods
//! 10–30 ms, 70% worst-case utilization at `f_max`, ≤ 1000
//! sub-instances), simulate truncated-normal workloads under greedy
//! DVS, and report the percentage runtime-energy improvement of the ACS
//! schedule over the WCS schedule.
//!
//! Since the scenario redesign the whole experiment is **data**: this
//! binary loads `scenarios/fig6a_random.txt` (the grid) and
//! `scenarios/fig6a_threeway.txt` (the reduced WCS / greedy / ReOpt
//! comparison) and only renders the pivot tables — the same files run
//! unchanged through `acsched run scenarios/fig6a_random.txt`. Scale
//! lives in the files now; edit `count=` / `hyper_periods` there (or
//! point `ACS_SCENARIO_DIR` at copies) instead of setting env vars.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin fig6a_random
//! ```

use acs_bench::scenario_path;
use acs_runtime::{CampaignReport, ScheduleChoice};
use acs_scenario::{Scenario, TaskSetDecl};
use acs_sim::Summary;

/// The `(tasks, ratio, row names)` cells declared by a fig6a-style
/// scenario, in declaration order.
fn random_cells(scenario: &Scenario) -> Vec<(usize, f64, Vec<String>)> {
    scenario
        .task_sets
        .iter()
        .filter_map(|decl| match decl {
            TaskSetDecl::Random {
                tasks,
                ratio,
                count,
                ..
            } => Some((
                *tasks,
                *ratio,
                (0..*count)
                    .map(|idx| acs_workloads::paper_set_name(*tasks, *ratio, idx))
                    .collect(),
            )),
            _ => None,
        })
        .collect()
}

fn sorted_unique<T: PartialOrd + Copy>(values: impl Iterator<Item = T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite axis values"));
    out
}

fn load_and_run(name: &str) -> (Scenario, CampaignReport, usize) {
    let path = scenario_path(name);
    let scenario =
        Scenario::load(&path).unwrap_or_else(|e| panic!("loading {}: {e}", path.display()));
    let campaign = scenario.to_campaign().expect("non-empty figure grid");
    eprintln!(
        "{name}: running {} cells / {} simulations...",
        campaign.cell_count(),
        campaign.run_count()
    );
    let report = campaign.run();
    // Declared random rows that produced no cells at all were skipped by
    // the generator (sub-instance cap) — the paper protocol's per-set
    // generation failures. Rows with cells that carry errors are counted
    // separately as synthesis failures by the caller.
    let present: std::collections::BTreeSet<&str> =
        report.cells().iter().map(|c| c.task_set.as_str()).collect();
    let gen_failures = random_cells(&scenario)
        .iter()
        .flat_map(|(_, _, names)| names)
        .filter(|name| !present.contains(name.as_str()))
        .count();
    (scenario, report, gen_failures)
}

fn main() {
    let (scenario, report, gen_failures) = load_and_run("fig6a_random.txt");
    let cells = random_cells(&scenario);
    let counts = sorted_unique(cells.iter().map(|(n, _, _)| *n));
    let ratios = sorted_unique(cells.iter().map(|(_, r, _)| *r));
    let sets_per_cell = cells.first().map_or(0, |(_, _, names)| names.len());
    let hp = scenario.hyper_periods.unwrap_or(1);

    println!(
        "Figure 6(a): % runtime-energy improvement of ACS over WCS \
         ({sets_per_cell} sets x {hp} hyper-periods per cell; paper: 100 x 1000)\n"
    );
    print!("{:>8}", "#tasks");
    for ratio in &ratios {
        print!(" {:>16}", format!("BCEC/WCEC={ratio}"));
    }
    println!();
    for &n in &counts {
        print!("{n:>8}");
        for &ratio in &ratios {
            let mut summary = Summary::new();
            for (_, _, names) in cells.iter().filter(|(c, r, _)| *c == n && *r == ratio) {
                for name in names {
                    if let Some(g) = report.gain(name, "linear", "greedy", "paper-normal") {
                        summary.push(100.0 * g);
                    }
                }
            }
            print!(
                " {:>16}",
                format!("{:>6.1}% ±{:>4.1}", summary.mean(), summary.std_dev())
            );
        }
        println!();
    }
    // One synthesis failure poisons both a set's WCS and ACS cells;
    // count failed *sets* (matching the paper protocol's per-set
    // accounting), not failed cells.
    let failed_sets: std::collections::BTreeSet<&str> = report
        .failures()
        .map(|(cell, _)| cell.task_set.as_str())
        .collect();
    for (cell, err) in report.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    assert_eq!(
        report.total_deadline_misses(),
        0,
        "hard deadlines must hold"
    );
    println!(
        "\nPaper's reported shape: improvement grows with task count; \
         ≈60% at (10 tasks, ratio 0.1); ≈0 at ratio 0.9. Failures: {}.",
        gen_failures + failed_sets.len()
    );

    // ---- three-way comparison: WCS·greedy vs ACS·greedy vs ACS·reopt ----
    // Boundary re-solves cost ~10³ greedy dispatches, so the online
    // re-optimizer's scenario declares a 2-set subset of the same cells
    // at fewer hyper-periods — paired draws, quick-profile synthesis
    // (the comparison is relative).
    let (scenario3, report3, _) = load_and_run("fig6a_threeway.txt");
    let cells3 = random_cells(&scenario3);
    let sub_sets = cells3.first().map_or(0, |(_, _, names)| names.len());
    let sub_hp = scenario3.hyper_periods.unwrap_or(1);

    println!(
        "\nThree-way (subset: {sub_sets} sets x {sub_hp} hyper-periods per cell): \
         % energy saved vs WCS+greedy"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "#tasks", "ACS+greedy", "ACS+reopt", "WCS+reopt"
    );
    for &n in &counts {
        let mut acs_greedy = Summary::new();
        let mut acs_reopt = Summary::new();
        let mut wcs_reopt = Summary::new();
        for (_, _, names) in cells3.iter().filter(|(c, _, _)| *c == n) {
            for name in names {
                let energy = |sched, policy: &str| {
                    report3
                        .find(name, "linear", sched, policy, "paper-normal")
                        .and_then(|c| c.stats())
                        .map(|s| s.mean_energy.as_units())
                };
                let Some(base) = energy(ScheduleChoice::Wcs, "greedy") else {
                    continue;
                };
                if let Some(e) = energy(ScheduleChoice::Acs, "greedy") {
                    acs_greedy.push(100.0 * (1.0 - e / base));
                }
                if let Some(e) = energy(ScheduleChoice::Acs, "reopt") {
                    acs_reopt.push(100.0 * (1.0 - e / base));
                }
                if let Some(e) = energy(ScheduleChoice::Wcs, "reopt") {
                    wcs_reopt.push(100.0 * (1.0 - e / base));
                }
            }
        }
        println!(
            "{:>8} {:>13.1}% {:>13.1}% {:>13.1}%",
            n,
            acs_greedy.mean(),
            acs_reopt.mean(),
            wcs_reopt.mean()
        );
    }
    for (cell, err) in report3.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    if let Some(rate) = report3.solver_cache_hit_rate() {
        println!(
            "solver cache hit rate: {:.1}% over the shared campaign cache",
            100.0 * rate
        );
    }
    // Over *every* successful cell — a missing greedy baseline must not
    // exempt a reopt cell from the hard-deadline guard.
    assert_eq!(
        report3.total_deadline_misses(),
        0,
        "hard deadlines must hold for ReOpt too"
    );
    println!(
        "\nReOpt re-solves the remaining schedule at every job boundary: \
         on the WCS schedule it recovers most of the offline ACS gain \
         online; on the ACS schedule it adds the workload actually \
         observed on top of the offline expectation."
    );
}
