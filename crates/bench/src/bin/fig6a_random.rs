//! **Figure 6(a)** — energy improvement of ACS over WCS on random task
//! sets, as a function of task count and workload flexibility.
//!
//! Paper protocol (§4): for each task count `N ∈ {2,4,6,8,10}` and
//! `BCEC/WCEC ∈ {0.1, 0.5, 0.9}`, generate 100 random task sets (periods
//! 10–30 ms, 70% worst-case utilization at `f_max`, ≤ 1000
//! sub-instances), simulate 1000 hyper-periods of truncated-normal
//! workloads under greedy DVS, and report the percentage runtime-energy
//! improvement of the ACS schedule over the WCS schedule.
//!
//! The whole protocol is one [`Campaign`]: every generated set is a grid
//! row, `{WCS, ACS} × greedy` are the cells, and the runner parallelizes
//! synthesis and simulation across all cells.
//!
//! A second, reduced campaign turns the figure into the **three-way
//! WCS / greedy-heuristic / ReOpt comparison** the paper is about:
//! `{WCS, ACS} × {greedy, reopt}` on a subset of the same sets (boundary
//! re-solves cost ~10³ greedy dispatches, so the subset keeps the run
//! bounded; the shared solver cache absorbs repeated states and its hit
//! rate is printed with the table).
//!
//! ```sh
//! cargo run --release -p acs-bench --bin fig6a_random            # reduced scale
//! ACS_PAPER_SCALE=1 cargo run --release -p acs-bench --bin fig6a_random
//! ```

use acs_bench::{random_paper_sets, standard_cpu, Scale};
use acs_core::SynthesisOptions;
use acs_model::TaskSet;
use acs_runtime::{Campaign, PolicySpec, ScheduleChoice, WorkloadSpec};
use acs_sim::Summary;

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    const TASK_COUNTS: [usize; 5] = [2, 4, 6, 8, 10];
    const RATIOS: [f64; 3] = [0.1, 0.5, 0.9];

    println!(
        "Figure 6(a): % runtime-energy improvement of ACS over WCS \
         ({} sets x {} hyper-periods per cell; paper: 100 x 1000)\n",
        scale.task_sets, scale.hyper_periods
    );

    // One campaign holds the whole figure: 15 (count, ratio) cells x
    // `task_sets` random sets each, under {WCS, ACS} x greedy.
    let mut builder = Campaign::builder()
        .processor("linear", cpu.clone())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .workload(WorkloadSpec::Paper)
        .seeds([scale.seed ^ 0xACE5])
        .hyper_periods(scale.hyper_periods)
        .synthesis(SynthesisOptions::default())
        .acs_multistart(true);
    let mut cell_names: Vec<Vec<Vec<String>>> = Vec::new();
    // Only the three-way subset of each cell's sets is retained for the
    // second campaign.
    let sub_sets = scale.task_sets.min(2);
    let mut reopt_sets: Vec<Vec<Vec<(String, TaskSet)>>> = Vec::new();
    let mut gen_failures = 0usize;
    for (row, &n) in TASK_COUNTS.iter().enumerate() {
        cell_names.push(Vec::new());
        reopt_sets.push(Vec::new());
        for (col, &ratio) in RATIOS.iter().enumerate() {
            let gen_seed = scale.seed + (row as u64) * 1_000_000 + (col as u64) * 10_000;
            let sets = random_paper_sets(n, ratio, scale.task_sets, gen_seed, cpu.f_max());
            gen_failures += scale.task_sets - sets.len();
            cell_names[row].push(sets.iter().map(|(name, _)| name.clone()).collect());
            reopt_sets[row].push(sets.iter().take(sub_sets).cloned().collect());
            builder = builder.task_sets(sets);
        }
    }
    let campaign = builder.build().expect("non-empty figure grid");
    eprintln!(
        "running {} cells / {} simulations...",
        campaign.cell_count(),
        campaign.run_count()
    );
    let report = campaign.run();

    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "#tasks", "BCEC/WCEC=0.1", "BCEC/WCEC=0.5", "BCEC/WCEC=0.9"
    );
    let mut misses = 0usize;
    for (row, &n) in TASK_COUNTS.iter().enumerate() {
        let cells: Vec<String> = RATIOS
            .iter()
            .enumerate()
            .map(|(col, _)| {
                let mut summary = Summary::new();
                for name in &cell_names[row][col] {
                    if let Some(g) = report.gain(name, "linear", "greedy", "paper-normal") {
                        summary.push(100.0 * g);
                    }
                }
                format!("{:>6.1}% ±{:>4.1}", summary.mean(), summary.std_dev())
            })
            .collect();
        println!(
            "{:>8} {:>16} {:>16} {:>16}",
            n, cells[0], cells[1], cells[2]
        );
    }
    misses += report.total_deadline_misses();
    // One synthesis failure poisons both a set's WCS and ACS cells;
    // count failed *sets* (matching the paper protocol's per-set
    // accounting), not failed cells.
    let failed_sets: std::collections::BTreeSet<&str> = report
        .failures()
        .map(|(cell, _)| cell.task_set.as_str())
        .collect();
    let failures = gen_failures + failed_sets.len();
    for (cell, err) in report.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    assert_eq!(misses, 0, "hard deadlines must hold");
    println!(
        "\nPaper's reported shape: improvement grows with task count; \
         ≈60% at (10 tasks, ratio 0.1); ≈0 at ratio 0.9. Failures: {failures}."
    );

    // ---- three-way comparison: WCS·greedy vs ACS·greedy vs ACS·reopt ----
    // Boundary re-solves cost ~10³ greedy dispatches, so the online
    // re-optimizer runs on a subset of the same sets at fewer
    // hyper-periods — paired draws, quick-profile synthesis (the
    // comparison is relative).
    let sub_hp = scale.hyper_periods.min(10);
    let mut builder = Campaign::builder()
        .processor("linear", cpu.clone())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .policy(PolicySpec::reopt())
        .workload(WorkloadSpec::Paper)
        .seeds([scale.seed ^ 0xACE5])
        .hyper_periods(sub_hp)
        .synthesis(SynthesisOptions::quick());
    for row in reopt_sets {
        for sets in row {
            builder = builder.task_sets(sets);
        }
    }
    let campaign = builder.build().expect("non-empty three-way grid");
    eprintln!(
        "running three-way comparison: {} cells / {} simulations...",
        campaign.cell_count(),
        campaign.run_count()
    );
    let report = campaign.run();

    println!(
        "\nThree-way (subset: {sub_sets} sets x {sub_hp} hyper-periods per cell): \
         % energy saved vs WCS+greedy"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "#tasks", "ACS+greedy", "ACS+reopt", "WCS+reopt"
    );
    for (row, &n) in TASK_COUNTS.iter().enumerate() {
        let mut acs_greedy = Summary::new();
        let mut acs_reopt = Summary::new();
        let mut wcs_reopt = Summary::new();
        for col_names in &cell_names[row] {
            for name in col_names.iter().take(sub_sets) {
                let energy = |sched, policy: &str| {
                    report
                        .find(name, "linear", sched, policy, "paper-normal")
                        .and_then(|c| c.stats())
                        .map(|s| s.mean_energy.as_units())
                };
                let Some(base) = energy(ScheduleChoice::Wcs, "greedy") else {
                    continue;
                };
                if let Some(e) = energy(ScheduleChoice::Acs, "greedy") {
                    acs_greedy.push(100.0 * (1.0 - e / base));
                }
                if let Some(e) = energy(ScheduleChoice::Acs, "reopt") {
                    acs_reopt.push(100.0 * (1.0 - e / base));
                }
                if let Some(e) = energy(ScheduleChoice::Wcs, "reopt") {
                    wcs_reopt.push(100.0 * (1.0 - e / base));
                }
            }
        }
        println!(
            "{:>8} {:>13.1}% {:>13.1}% {:>13.1}%",
            n,
            acs_greedy.mean(),
            acs_reopt.mean(),
            wcs_reopt.mean()
        );
    }
    for (cell, err) in report.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    if let Some(rate) = report.solver_cache_hit_rate() {
        println!(
            "solver cache hit rate: {:.1}% over the shared campaign cache",
            100.0 * rate
        );
    }
    // Over *every* successful cell — a missing greedy baseline must not
    // exempt a reopt cell from the hard-deadline guard.
    assert_eq!(
        report.total_deadline_misses(),
        0,
        "hard deadlines must hold for ReOpt too"
    );
    println!(
        "\nReOpt re-solves the remaining schedule at every job boundary: \
         on the WCS schedule it recovers most of the offline ACS gain \
         online; on the ACS schedule it adds the workload actually \
         observed on top of the offline expectation."
    );
}
