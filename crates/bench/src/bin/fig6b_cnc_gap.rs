//! **Figure 6(b)** — energy improvement of ACS over WCS on the two
//! real-life applications, CNC and GAP, across the BCEC/WCEC sweep.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin fig6b_cnc_gap
//! ACS_PAPER_SCALE=1 cargo run --release -p acs-bench --bin fig6b_cnc_gap
//! ```

use acs_bench::{compare_acs_wcs, standard_cpu, Scale};
use acs_core::SynthesisOptions;
use acs_model::TaskSet;
use acs_workloads::{cnc, gap};

/// A named builder of a real-life task set for one BCEC/WCEC ratio.
type AppBuilder<'a> = (&'a str, Box<dyn Fn(f64) -> TaskSet + 'a>);

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    let opts = SynthesisOptions::default();
    const RATIOS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

    println!(
        "Figure 6(b): % runtime-energy improvement of ACS over WCS \
         ({} hyper-periods per cell)\n",
        scale.hyper_periods
    );
    println!("{:>10} {:>10} {:>10}", "BCEC/WCEC", "CNC", "GAP");

    let apps: Vec<AppBuilder> = vec![
        (
            "CNC",
            Box::new(|r| cnc(cpu.f_max(), r, 0.7).expect("valid CNC parameters")),
        ),
        (
            "GAP",
            Box::new(|r| gap(cpu.f_max(), r, 0.7).expect("valid GAP parameters")),
        ),
    ];

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); apps.len()];
    for &ratio in &RATIOS {
        for (i, (name, build)) in apps.iter().enumerate() {
            let set = build(ratio);
            match compare_acs_wcs(&set, &cpu, &opts, scale.hyper_periods, scale.seed) {
                Ok(c) => {
                    assert_eq!(c.misses, 0, "{name} missed deadlines");
                    columns[i].push(100.0 * c.improvement);
                }
                Err(e) => {
                    eprintln!("  [{name} ratio={ratio}] {e}");
                    columns[i].push(f64::NAN);
                }
            }
        }
    }
    for (row, &ratio) in RATIOS.iter().enumerate() {
        println!(
            "{:>10.1} {:>9.1}% {:>9.1}%",
            ratio, columns[0][row], columns[1][row]
        );
    }
    println!(
        "\nPaper's reported shape: ≈41% (CNC) and ≈30% (GAP) at ratio 0.1, \
         both decaying toward 0 at ratio 0.9."
    );
}
