//! **Figure 6(b)** — energy improvement of ACS over WCS on the two
//! real-life applications, CNC and GAP, across the BCEC/WCEC sweep —
//! expressed as one [`Campaign`] grid (10 application instances ×
//! {WCS, ACS} × greedy).
//!
//! ```sh
//! cargo run --release -p acs-bench --bin fig6b_cnc_gap
//! ACS_PAPER_SCALE=1 cargo run --release -p acs-bench --bin fig6b_cnc_gap
//! ```

use acs_bench::{standard_cpu, Scale};
use acs_core::SynthesisOptions;
use acs_runtime::{Campaign, PolicySpec, ScheduleChoice, WorkloadSpec};
use acs_workloads::{cnc, gap};

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    const RATIOS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

    println!(
        "Figure 6(b): % runtime-energy improvement of ACS over WCS \
         ({} hyper-periods per cell)\n",
        scale.hyper_periods
    );

    let mut builder = Campaign::builder()
        .processor("linear", cpu.clone())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .workload(WorkloadSpec::Paper)
        .seeds([scale.seed])
        .hyper_periods(scale.hyper_periods)
        .synthesis(SynthesisOptions::default())
        .acs_multistart(true);
    for &ratio in &RATIOS {
        builder = builder
            .task_set(
                format!("CNC@{ratio:.1}"),
                cnc(cpu.f_max(), ratio, 0.7).expect("valid CNC parameters"),
            )
            .task_set(
                format!("GAP@{ratio:.1}"),
                gap(cpu.f_max(), ratio, 0.7).expect("valid GAP parameters"),
            );
    }
    let report = builder.build().expect("non-empty figure grid").run();

    println!("{:>10} {:>10} {:>10}", "BCEC/WCEC", "CNC", "GAP");
    for &ratio in &RATIOS {
        let col = |app: &str| {
            report
                .gain(
                    &format!("{app}@{ratio:.1}"),
                    "linear",
                    "greedy",
                    "paper-normal",
                )
                .map(|g| 100.0 * g)
                .unwrap_or(f64::NAN)
        };
        println!("{ratio:>10.1} {:>9.1}% {:>9.1}%", col("CNC"), col("GAP"));
    }
    for (cell, err) in report.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    assert_eq!(
        report.total_deadline_misses(),
        0,
        "hard deadlines must hold"
    );
    println!(
        "\nPaper's reported shape: ≈41% (CNC) and ≈30% (GAP) at ratio 0.1, \
         both decaying toward 0 at ratio 0.9."
    );
}
