//! **Ablation A1** — how the objective flavor affects runtime energy.
//!
//! The paper's formulation admits several readings of "average energy":
//! the exact greedy-trace model at ACEC (our default), the idealized
//! average-speed model (a literal reading of eq. (4)), and the
//! probability-weighted quantile objective (§3.2's remark). This bench
//! synthesizes ACS under each and measures actual runtime energy under
//! identical workloads.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin ablation_objective
//! ```

use acs_bench::{run_greedy, standard_cpu, Scale};
use acs_core::{synthesize_acs_warm, synthesize_wcs, ObjectiveKind, SynthesisOptions};
use acs_sim::Summary;
use acs_workloads::{generate, RandomSetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    let variants = [
        ("AcecTrace (default)", ObjectiveKind::AcecTrace),
        ("PaperIdealSpeed", ObjectiveKind::PaperIdealSpeed),
        ("Quantiles(5)", ObjectiveKind::Quantiles(5)),
    ];
    println!(
        "Ablation A1: ACS objective flavor — % runtime improvement over WCS \
         (6-task sets, ratio 0.1; {} sets x {} hyper-periods)\n",
        scale.task_sets, scale.hyper_periods
    );

    let mut summaries = vec![Summary::new(); variants.len()];
    for set_idx in 0..scale.task_sets {
        let seed = scale.seed + set_idx as u64;
        let cfg = RandomSetConfig::paper(6, 0.1, cpu.f_max());
        let set = match generate(&cfg, &mut StdRng::seed_from_u64(seed)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("  [set {set_idx}] generation: {e}");
                continue;
            }
        };
        let base_opts = SynthesisOptions::default();
        let wcs = match synthesize_wcs(&set, &cpu, &base_opts) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("  [set {set_idx}] wcs: {e}");
                continue;
            }
        };
        let (ew, _) = run_greedy(&set, &cpu, &wcs, scale.hyper_periods, seed ^ 0xA1).unwrap();
        for (i, (name, kind)) in variants.iter().enumerate() {
            let opts = SynthesisOptions {
                objective: *kind,
                ..Default::default()
            };
            match synthesize_acs_warm(&set, &cpu, &opts, &wcs) {
                Ok(acs) => {
                    let (ea, misses) =
                        run_greedy(&set, &cpu, &acs, scale.hyper_periods, seed ^ 0xA1).unwrap();
                    assert_eq!(misses, 0);
                    summaries[i].push(100.0 * (1.0 - ea / ew));
                }
                Err(e) => eprintln!("  [set {set_idx}] {name}: {e}"),
            }
        }
    }
    println!(
        "{:<24} {:>10} {:>8} {:>8} {:>8}",
        "objective", "mean", "std", "min", "max"
    );
    for ((name, _), s) in variants.iter().zip(&summaries) {
        println!(
            "{:<24} {:>9.1}% {:>8.1} {:>7.1}% {:>7.1}%",
            name,
            s.mean(),
            s.std_dev(),
            s.min(),
            s.max()
        );
    }
    println!(
        "\nExpected: AcecTrace and Quantiles within noise of each other \
         (the paper notes ACEC is a good approximation); PaperIdealSpeed \
         slightly worse because it underestimates dispatch speeds."
    );
}
