//! **Figures 3–5** — the fully preemptive schedule construction and the
//! fill rule, regenerated.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin fig34_expansion
//! ```

use acs_core::fill::fill_amounts;
use acs_model::units::{Cycles, Ticks};
use acs_model::{Task, TaskSet};
use acs_preempt::FullyPreemptiveSchedule;

fn main() {
    // Figure 3: three tasks with periods 3, 6, 9 ms.
    let set = TaskSet::new(
        [3u64, 6, 9]
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::builder(format!("T{}", i + 1), Ticks::new(p))
                    .wcec(Cycles::from_cycles(10.0))
                    .build()
                    .expect("valid task")
            })
            .collect(),
    )
    .expect("valid set");
    println!(
        "Figure 3: periods {{3, 6, 9}} ms, hyper-period {} ms",
        set.hyper_period().get()
    );
    for (id, t) in set.iter() {
        println!(
            "  {} releases instances at {:?}",
            t.name(),
            (0..set.instances_of(id))
                .map(|j| j * t.period().get())
                .collect::<Vec<_>>()
        );
    }

    // Figure 4: the fully preemptive expansion with its total order.
    let fps = FullyPreemptiveSchedule::expand(&set).expect("expansion fits");
    println!(
        "\nFigure 4: fully preemptive schedule — {} sub-instances over {} segments",
        fps.len(),
        fps.grid().segment_count()
    );
    for s in 0..fps.grid().segment_count() {
        let (a, b) = fps.grid().segment_bounds(s);
        let labels: Vec<String> = fps.segment_subs(s).iter().map(|x| x.label()).collect();
        println!("  segment [{a}, {b}): {}", labels.join(" < "));
    }
    let order: Vec<String> = fps
        .sub_instances()
        .iter()
        .take(8)
        .map(|s| s.label())
        .collect();
    println!("  total order prefix: {} < ...", order.join(" < "));

    // Figure 5: the fill rule example — WCEC 30 split in three chunks of
    // 10, ACEC 15 executes (10, 5, 0).
    let fills = fill_amounts(&[10.0, 10.0, 10.0], 15.0);
    println!(
        "\nFigure 5: fill rule — WCEC 30 in chunks (10, 10, 10), ACEC 15 \
         executes {fills:?}  (paper: [10, 5, 0])"
    );
    assert_eq!(fills, vec![10.0, 5.0, 0.0]);
}
