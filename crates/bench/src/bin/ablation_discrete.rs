//! **Ablation A3** — discrete voltage levels and transition overhead.
//!
//! The paper assumes a continuous supply and free transitions (§3.2).
//! This ablation quantifies both assumptions on random task sets:
//! ACS-over-WCS improvement under level quantization (runtime rounds up,
//! keeping deadlines safe) and per-switch time/energy overheads.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin ablation_discrete
//! ```

use acs_bench::{compare_acs_wcs, Scale};
use acs_core::SynthesisOptions;
use acs_model::units::{Energy, TimeSpan, Volt};
use acs_power::{FreqModel, LevelTable, Processor, TransitionOverhead};
use acs_sim::Summary;
use acs_workloads::{generate, RandomSetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn processor(levels: Option<usize>, overhead: TransitionOverhead) -> Processor {
    let mut b = Processor::builder(FreqModel::linear(50.0).expect("kappa > 0"))
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .transition_overhead(overhead);
    if let Some(n) = levels {
        let step = (4.0 - 0.3) / (n - 1) as f64;
        let table: Vec<Volt> = (0..n)
            .map(|i| Volt::from_volts(0.3 + step * i as f64))
            .collect();
        b = b.discrete_levels(LevelTable::new(table).expect("monotone levels"));
    }
    b.build().expect("valid processor")
}

fn main() {
    let scale = Scale::from_env();
    let opts = SynthesisOptions::default();
    let variants: Vec<(String, Processor)> = vec![
        (
            "continuous, free switch".into(),
            processor(None, TransitionOverhead::NONE),
        ),
        (
            "4 levels".into(),
            processor(Some(4), TransitionOverhead::NONE),
        ),
        (
            "8 levels".into(),
            processor(Some(8), TransitionOverhead::NONE),
        ),
        (
            "16 levels".into(),
            processor(Some(16), TransitionOverhead::NONE),
        ),
        (
            "overhead 10µs/10eu".into(),
            processor(
                None,
                TransitionOverhead {
                    time: TimeSpan::from_ms(0.01),
                    energy: Energy::from_units(10.0),
                },
            ),
        ),
        (
            "overhead 50µs/50eu".into(),
            processor(
                None,
                TransitionOverhead {
                    time: TimeSpan::from_ms(0.05),
                    energy: Energy::from_units(50.0),
                },
            ),
        ),
    ];

    println!(
        "Ablation A3: ACS-over-WCS % improvement under processor variations \
         (6-task sets, ratio 0.1; {} sets x {} hyper-periods)\n",
        scale.task_sets, scale.hyper_periods
    );
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "processor", "mean", "std", "misses"
    );
    for (name, cpu) in &variants {
        let mut s = Summary::new();
        let mut misses = 0usize;
        for set_idx in 0..scale.task_sets {
            let seed = scale.seed + set_idx as u64;
            let cfg = RandomSetConfig::paper(6, 0.1, cpu.f_max());
            let Ok(set) = generate(&cfg, &mut StdRng::seed_from_u64(seed)) else {
                continue;
            };
            match compare_acs_wcs(&set, cpu, &opts, scale.hyper_periods, seed ^ 0xA3) {
                Ok(c) => {
                    s.push(100.0 * c.improvement);
                    misses += c.misses;
                }
                Err(e) => eprintln!("  [{name} set {set_idx}] {e}"),
            }
        }
        println!(
            "{:<26} {:>9.1}% {:>8.1} {:>8}",
            name,
            s.mean(),
            s.std_dev(),
            misses
        );
    }
    println!(
        "\nExpected: improvements shrink slightly with coarser levels and \
         larger overheads but the ACS advantage persists — supporting the \
         paper's 'transition overhead is negligible' assumption (§3)."
    );
}
