//! Hot-path allocation and memory statistics for the bench trajectory
//! (`scripts/bench-trajectory.sh`), printed as `key value` lines:
//!
//! * `allocs_per_job` — allocator acquisitions per job in the engine's
//!   steady state (two warm-up hyper-periods, then three counted ones).
//!   The arena design pins this at exactly `0.000` (see docs/PERF.md
//!   and tests/alloc_budget.rs); the bench records it so a regression
//!   shows up in the BENCH_<n>.json series too.
//! * `peak_rss_mb` — the process's peak resident set (`VmHWM` from
//!   /proc/self/status) after running the scenario given as the first
//!   argument in-process (the same campaign the sweep metric times).
//!   Omitted on platforms without /proc.
//!
//! Usage: `hotpath_stats [scenario.txt]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use acs_core::{synthesize_wcs, SynthesisOptions};
use acs_model::units::{Cycles, Ticks, Volt};
use acs_model::{Task, TaskId, TaskSet};
use acs_power::{FreqModel, Processor};
use acs_scenario::Scenario;
use acs_sim::{SimOptions, Simulator, StaticSpeed};

/// System allocator with a switchable acquisition counter — the same
/// scheme tests/alloc_budget.rs pins to zero.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn set() -> TaskSet {
    let mk = |n: &str, p: u64, w: f64| {
        Task::builder(n, Ticks::new(p))
            .wcec(Cycles::from_cycles(w))
            .acec(Cycles::from_cycles(0.5 * w))
            .bcec(Cycles::from_cycles(0.1 * w))
            .build()
            .unwrap()
    };
    TaskSet::new(vec![
        mk("t1", 10, 400.0),
        mk("t2", 20, 900.0),
        mk("t3", 20, 600.0),
    ])
    .unwrap()
}

/// Steady-state allocations per job on the schedule-driven engine path.
fn allocs_per_job() -> f64 {
    let set = set();
    let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.5))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap();
    let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
    let hyper = set.hyper_period().get() as f64;
    let jobs = 3 * set.total_instances();
    let mut workload =
        |t: TaskId, i: u64| Cycles::from_cycles(60.0 + ((t.0 as u64 * 131 + i * 37) % 300) as f64);
    let mut sim = Simulator::new(&set, &cpu, StaticSpeed)
        .with_schedule(&schedule)
        .with_options(SimOptions {
            hyper_periods: 6,
            ..Default::default()
        });
    let mut run = sim.stepped(&mut workload).unwrap();
    let step_until = |run: &mut acs_sim::SteppedRun<'_, '_, '_>, until: f64| {
        while run.clock_ms().is_some_and(|t| t < until) {
            run.step().unwrap();
        }
    };
    step_until(&mut run, 2.0 * hyper);
    ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    step_until(&mut run, 5.0 * hyper);
    ENABLED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    run.finish().unwrap();
    allocs as f64 / jobs as f64
}

/// `VmHWM` from /proc/self/status, in MiB (`None` off Linux).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

fn main() {
    println!("allocs_per_job {:.3}", allocs_per_job());
    if let Some(path) = std::env::args().nth(1) {
        let report = Scenario::load(&path)
            .unwrap_or_else(|e| panic!("loading {path}: {e}"))
            .to_campaign()
            .unwrap_or_else(|e| panic!("materializing {path}: {e}"))
            .run();
        assert_eq!(report.failures().count(), 0, "scenario cells failed");
        if let Some(mb) = peak_rss_mb() {
            println!("peak_rss_mb {mb:.1}");
        }
    }
}
