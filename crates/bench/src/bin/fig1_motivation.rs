//! **Table 1 / Figures 1–2** — the motivational example, regenerated.
//!
//! Prints the task parameters (Table 1), the WCS static schedule of
//! Fig. 1(a), the greedy ACEC runtime of Fig. 1(b), the stretched
//! schedule of Fig. 2 with its average- and worst-case runs, and the
//! infeasibility of those end times on a 3 V part.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin fig1_motivation
//! ```

use acs_core::{
    evaluate_trace, synthesize_acs, synthesize_wcs, Milestone, ScheduleKind, SolveDiagnostics,
    SpeedBasis, StaticSchedule, SynthesisOptions,
};
use acs_model::units::{Cycles, Energy, Time, Volt};
use acs_model::TaskSet;
use acs_preempt::FullyPreemptiveSchedule;
use acs_workloads::{fig1_end_times, fig2_end_times, motivation, motivation_system};

fn hand_schedule(set: &TaskSet, ends: [Time; 3]) -> StaticSchedule {
    let fps = FullyPreemptiveSchedule::expand(set).expect("3-task frame expands");
    let milestones = fps
        .sub_instances()
        .iter()
        .zip(ends)
        .map(|(s, end_time)| Milestone {
            sub: s.id,
            end_time,
            worst_workload: Cycles::from_cycles(1000.0),
            avg_workload: Cycles::from_cycles(500.0),
        })
        .collect();
    StaticSchedule::from_parts(
        fps,
        milestones,
        ScheduleKind::Custom,
        SolveDiagnostics {
            converged: true,
            max_violation: 0.0,
            outer_iterations: 0,
            evaluations: 0,
            predicted_avg_energy: Energy::ZERO,
            predicted_worst_energy: Energy::ZERO,
        },
    )
    .expect("hand schedule is consistent")
}

fn main() {
    let (set, cpu) = motivation();

    println!("Table 1 — task parameters (reconstructed; see DESIGN.md §2):");
    println!(
        "{:>6} {:>10} {:>8} {:>8} {:>8}",
        "task", "period(ms)", "WCEC", "ACEC", "C_eff"
    );
    for t in set.tasks() {
        println!(
            "{:>6} {:>10} {:>8.0} {:>8.0} {:>8.1}",
            t.name(),
            t.period().get(),
            t.wcec().as_cycles(),
            t.acec().as_cycles(),
            t.c_eff()
        );
    }
    println!("processor: f = 50·V cyc/ms, V in [0.5, 4.0] V\n");

    let wcs = hand_schedule(&set, fig1_end_times());
    let acs = hand_schedule(&set, fig2_end_times());
    let acec: Vec<Cycles> = set.tasks().iter().map(|t| t.acec()).collect();
    let wcec: Vec<Cycles> = set.tasks().iter().map(|t| t.wcec()).collect();

    let rows: [(&str, &StaticSchedule, &[Cycles]); 4] = [
        ("Fig 1(a): WCS ends, worst case", &wcs, &wcec),
        ("Fig 1(b): WCS ends, average case", &wcs, &acec),
        ("Fig 2:    ACS ends, average case", &acs, &acec),
        ("Fig 2':   ACS ends, worst case", &acs, &wcec),
    ];
    println!(
        "{:<36} {:>10} {:>26}",
        "scenario", "energy(C)", "finish times (ms)"
    );
    let mut energies = Vec::new();
    for (name, sched, totals) in rows {
        let tr = evaluate_trace(sched, &set, &cpu, totals, SpeedBasis::WorstRemaining);
        let fins: Vec<String> = tr
            .finish
            .iter()
            .map(|f| format!("{:.2}", f.as_ms()))
            .collect();
        println!(
            "{:<36} {:>10.0} {:>26}",
            name,
            tr.energy.as_units(),
            fins.join(", ")
        );
        energies.push(tr.energy.as_units());
    }
    println!(
        "\nACS-vs-WCS average-case improvement: {:.1}%   (paper: 24%)",
        100.0 * (1.0 - energies[2] / energies[1])
    );
    println!(
        "ACS worst-case increase:             {:.1}%   (paper: 33%)",
        100.0 * (energies[3] / energies[0] - 1.0)
    );

    // Infeasibility at 3 V.
    let (set3, cpu3) = motivation_system(Volt::from_volts(3.0));
    let acs3 = hand_schedule(&set3, fig2_end_times());
    let tr = evaluate_trace(&acs3, &set3, &cpu3, &wcec, SpeedBasis::WorstRemaining);
    println!(
        "\nWith Vmax = 3 V the Fig. 2 ends saturate in the worst case: \
         saturated = {}, lateness = {:.2} ms (paper: infeasible).",
        tr.saturated, tr.max_lateness_ms
    );

    // And the synthesizer recovers both schedules automatically.
    let opts = SynthesisOptions::default();
    let swcs = synthesize_wcs(&set, &cpu, &opts).expect("WCS synthesis");
    let sacs = synthesize_acs(&set, &cpu, &opts).expect("ACS synthesis");
    let fmt = |s: &StaticSchedule| -> Vec<String> {
        s.milestones()
            .iter()
            .map(|m| format!("{:.2}", m.end_time.as_ms()))
            .collect()
    };
    println!(
        "\nSynthesized WCS end times: [{}]  (paper Fig. 1(a): 6.67, 13.33, 20)",
        fmt(&swcs).join(", ")
    );
    println!(
        "Synthesized ACS end times: [{}]  (paper Fig. 2:    10, 15, 20)",
        fmt(&sacs).join(", ")
    );
}
