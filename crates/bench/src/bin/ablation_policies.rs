//! **Ablation A2** — online-policy sweep on both static schedules.
//!
//! Crosses {WCS, ACS} offline schedules with the five online policies to
//! separate the value of (a) static voltage scheduling, (b) greedy slack
//! reclamation, (c) the average-case-aware end times, and (d) online
//! re-optimization of the remaining schedule (`reopt`), against a
//! purely online cycle-conserving baseline.
//!
//! The sweep is **data**: `scenarios/ablation_policies.txt` declares the
//! whole grid (task sets, policies, seeds, scale) and this binary only
//! renders the normalized table — the same file runs unchanged through
//! `acsched run scenarios/ablation_policies.txt`. Boundary re-solves are
//! ~10³× a greedy dispatch, so the checked-in file declares a reduced
//! scale; edit `count=` / `hyper_periods` there (or point
//! `ACS_SCENARIO_DIR` at a copy) for bigger runs.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin ablation_policies
//! ```

use acs_bench::scenario_path;
use acs_runtime::ScheduleChoice;
use acs_scenario::{Scenario, TaskSetDecl};
use acs_sim::Summary;

fn main() {
    let path = scenario_path("ablation_policies.txt");
    let scenario =
        Scenario::load(&path).unwrap_or_else(|e| panic!("loading {}: {e}", path.display()));
    // Grid-row names straight from the declarations (materialization
    // happens once, inside `to_campaign`); a declared set missing from
    // the report — a generation failure — simply contributes no samples.
    let set_names: Vec<String> = scenario
        .task_sets
        .iter()
        .flat_map(|decl| match decl {
            TaskSetDecl::Inline { name, .. }
            | TaskSetDecl::RealLife { name, .. }
            | TaskSetDecl::Trace { name, .. } => {
                vec![name.clone()]
            }
            TaskSetDecl::Random {
                tasks,
                ratio,
                count,
                ..
            } => (0..*count)
                .map(|idx| acs_workloads::paper_set_name(*tasks, *ratio, idx))
                .collect(),
        })
        .collect();
    println!(
        "Ablation A2: runtime energy by (schedule x policy), normalized to \
         no-DVS = 100 (6-task sets, ratio 0.1; {} sets x {} hyper-periods)\n",
        set_names.len(),
        scenario.hyper_periods.unwrap_or(1)
    );
    let campaign = scenario.to_campaign().expect("non-empty ablation grid");
    eprintln!(
        "running {} cells / {} simulations...",
        campaign.cell_count(),
        campaign.run_count()
    );
    let report = campaign.run();

    let rows: [(&str, ScheduleChoice, &str); 8] = [
        (
            "no-DVS (fmax + shutdown)",
            ScheduleChoice::Unscheduled,
            "no-dvs",
        ),
        ("ccRM (online only)", ScheduleChoice::Unscheduled, "ccrm"),
        ("WCS + static speeds", ScheduleChoice::Wcs, "static"),
        ("WCS + greedy reclaim", ScheduleChoice::Wcs, "greedy"),
        ("ACS + static speeds", ScheduleChoice::Acs, "static"),
        ("ACS + greedy reclaim", ScheduleChoice::Acs, "greedy"),
        ("WCS + online reopt", ScheduleChoice::Wcs, "reopt"),
        ("ACS + online reopt", ScheduleChoice::Acs, "reopt"),
    ];
    let mut summaries = vec![Summary::new(); rows.len()];
    let mut misses = vec![0usize; rows.len()];
    for name in &set_names {
        let Some(base) = report
            .find(
                name,
                "linear",
                ScheduleChoice::Unscheduled,
                "no-dvs",
                "paper-normal",
            )
            .and_then(|c| c.stats())
            .map(|s| s.mean_energy.as_units())
        else {
            continue;
        };
        for (i, (_, schedule, policy)) in rows.iter().enumerate() {
            if let Some(stats) = report
                .find(name, "linear", *schedule, policy, "paper-normal")
                .and_then(|c| c.stats())
            {
                summaries[i].push(100.0 * stats.mean_energy.as_units() / base);
                misses[i] += stats.deadline_misses;
            }
        }
    }

    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "configuration", "energy", "std", "misses"
    );
    for (i, (label, _, _)) in rows.iter().enumerate() {
        println!(
            "{:<28} {:>10.1} {:>8.1} {:>8}",
            label,
            summaries[i].mean(),
            summaries[i].std_dev(),
            misses[i]
        );
    }
    for (cell, err) in report.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    if let Some(rate) = report.solver_cache_hit_rate() {
        println!("solver cache hit rate: {:.1}%", 100.0 * rate);
    }
    println!(
        "\nExpected ordering: no-DVS > static-only > greedy ≥ reopt; \
         ACS+greedy below WCS+greedy (the paper's claim), and reopt \
         closes most of the WCS-vs-ACS gap online. ccRM has no \
         worst-case schedule and may miss deadlines at 70% utilization."
    );
}
