//! **Ablation A2** — online-policy sweep on both static schedules.
//!
//! Crosses {WCS, ACS} offline schedules with the four online policies to
//! separate the value of (a) static voltage scheduling, (b) greedy slack
//! reclamation, and (c) the average-case-aware end times, against a
//! purely online cycle-conserving baseline. The sweep is one
//! [`Campaign`]: 4 policies × schedules × random sets in a single
//! parallel grid (schedule-free policies run once, unscheduled).
//!
//! ```sh
//! cargo run --release -p acs-bench --bin ablation_policies
//! ```

use acs_bench::{random_paper_sets, standard_cpu, Scale};
use acs_core::SynthesisOptions;
use acs_runtime::{Campaign, PolicySpec, ScheduleChoice, WorkloadSpec};
use acs_sim::Summary;

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    println!(
        "Ablation A2: runtime energy by (schedule x policy), normalized to \
         no-DVS = 100 (6-task sets, ratio 0.1; {} sets x {} hyper-periods)\n",
        scale.task_sets, scale.hyper_periods
    );

    let sets = random_paper_sets(6, 0.1, scale.task_sets, scale.seed, cpu.f_max());
    let set_names: Vec<String> = sets.iter().map(|(n, _)| n.clone()).collect();
    let report = Campaign::builder()
        .task_sets(sets)
        .processor("linear", cpu)
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::no_dvs())
        .policy(PolicySpec::ccrm())
        .policy(PolicySpec::static_speed())
        .policy(PolicySpec::greedy())
        .workload(WorkloadSpec::Paper)
        .seeds([scale.seed ^ 0xA2])
        .hyper_periods(scale.hyper_periods)
        .synthesis(SynthesisOptions::default())
        .acs_multistart(true)
        .build()
        .expect("non-empty ablation grid")
        .run();

    let rows: [(&str, ScheduleChoice, &str); 6] = [
        (
            "no-DVS (fmax + shutdown)",
            ScheduleChoice::Unscheduled,
            "no-dvs",
        ),
        ("ccRM (online only)", ScheduleChoice::Unscheduled, "ccrm"),
        ("WCS + static speeds", ScheduleChoice::Wcs, "static"),
        ("WCS + greedy reclaim", ScheduleChoice::Wcs, "greedy"),
        ("ACS + static speeds", ScheduleChoice::Acs, "static"),
        ("ACS + greedy reclaim", ScheduleChoice::Acs, "greedy"),
    ];
    let mut summaries = vec![Summary::new(); rows.len()];
    let mut misses = vec![0usize; rows.len()];
    for name in &set_names {
        let Some(base) = report
            .find(
                name,
                "linear",
                ScheduleChoice::Unscheduled,
                "no-dvs",
                "paper-normal",
            )
            .and_then(|c| c.stats())
            .map(|s| s.mean_energy.as_units())
        else {
            continue;
        };
        for (i, (_, schedule, policy)) in rows.iter().enumerate() {
            if let Some(stats) = report
                .find(name, "linear", *schedule, policy, "paper-normal")
                .and_then(|c| c.stats())
            {
                summaries[i].push(100.0 * stats.mean_energy.as_units() / base);
                misses[i] += stats.deadline_misses;
            }
        }
    }

    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "configuration", "energy", "std", "misses"
    );
    for (i, (label, _, _)) in rows.iter().enumerate() {
        println!(
            "{:<28} {:>10.1} {:>8.1} {:>8}",
            label,
            summaries[i].mean(),
            summaries[i].std_dev(),
            misses[i]
        );
    }
    for (cell, err) in report.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    println!(
        "\nExpected ordering: no-DVS > static-only > greedy; ACS+greedy \
         below WCS+greedy (the paper's claim). ccRM has no worst-case \
         schedule and may miss deadlines at 70% utilization."
    );
}
