//! **Ablation A2** — online-policy sweep on both static schedules.
//!
//! Crosses {WCS, ACS} offline schedules with the four online policies to
//! separate the value of (a) static voltage scheduling, (b) greedy slack
//! reclamation, and (c) the average-case-aware end times, against a
//! purely online cycle-conserving baseline.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin ablation_policies
//! ```

use acs_bench::{standard_cpu, Scale};
use acs_core::{synthesize_acs_best, synthesize_wcs, SynthesisOptions};
use acs_sim::{DvsPolicy, SimOptions, Simulator, Summary};
use acs_workloads::{generate, RandomSetConfig, TaskWorkloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    println!(
        "Ablation A2: runtime energy by (schedule x policy), normalized to \
         no-DVS = 100 (6-task sets, ratio 0.1; {} sets x {} hyper-periods)\n",
        scale.task_sets, scale.hyper_periods
    );

    let mut rows: Vec<(String, Summary, usize)> = vec![
        ("no-DVS (fmax + shutdown)".into(), Summary::new(), 0),
        ("ccRM (online only)".into(), Summary::new(), 0),
        ("WCS + static speeds".into(), Summary::new(), 0),
        ("WCS + greedy reclaim".into(), Summary::new(), 0),
        ("ACS + static speeds".into(), Summary::new(), 0),
        ("ACS + greedy reclaim".into(), Summary::new(), 0),
    ];

    for set_idx in 0..scale.task_sets {
        let seed = scale.seed + set_idx as u64;
        let cfg = RandomSetConfig::paper(6, 0.1, cpu.f_max());
        let Ok(set) = generate(&cfg, &mut StdRng::seed_from_u64(seed)) else {
            continue;
        };
        let opts = SynthesisOptions::default();
        let Ok(wcs) = synthesize_wcs(&set, &cpu, &opts) else {
            continue;
        };
        let Ok(acs) = synthesize_acs_best(&set, &cpu, &opts, &wcs) else {
            continue;
        };
        let configs: Vec<(DvsPolicy, Option<&acs_core::StaticSchedule>)> = vec![
            (DvsPolicy::NoDvs, None),
            (DvsPolicy::CcRm, None),
            (DvsPolicy::StaticSpeed, Some(&wcs)),
            (DvsPolicy::GreedyReclaim, Some(&wcs)),
            (DvsPolicy::StaticSpeed, Some(&acs)),
            (DvsPolicy::GreedyReclaim, Some(&acs)),
        ];
        let mut base = None;
        for (i, (policy, schedule)) in configs.into_iter().enumerate() {
            let mut draws = TaskWorkloads::paper(&set, seed ^ 0xA2);
            let mut sim = Simulator::new(&set, &cpu, policy).with_options(SimOptions {
                hyper_periods: scale.hyper_periods,
                deadline_tol_ms: 1e-3,
                ..Default::default()
            });
            if let Some(s) = schedule {
                sim = sim.with_schedule(s);
            }
            match sim.run(&mut |t, j| draws.draw(t, j)) {
                Ok(out) => {
                    let e = out.report.energy.as_units();
                    let b = *base.get_or_insert(e);
                    rows[i].1.push(100.0 * e / b);
                    rows[i].2 += out.report.deadline_misses;
                }
                Err(e) => eprintln!("  [set {set_idx} row {i}] {e}"),
            }
        }
    }

    println!("{:<28} {:>10} {:>8} {:>8}", "configuration", "energy", "std", "misses");
    for (name, s, misses) in &rows {
        println!("{:<28} {:>10.1} {:>8.1} {:>8}", name, s.mean(), s.std_dev(), misses);
    }
    println!(
        "\nExpected ordering: no-DVS > static-only > greedy; ACS+greedy \
         below WCS+greedy (the paper's claim). ccRM has no worst-case \
         schedule and may miss deadlines at 70% utilization."
    );
}
