//! **Ablation A2** — online-policy sweep on both static schedules.
//!
//! Crosses {WCS, ACS} offline schedules with the five online policies to
//! separate the value of (a) static voltage scheduling, (b) greedy slack
//! reclamation, (c) the average-case-aware end times, and (d) online
//! re-optimization of the remaining schedule (`reopt`), against a
//! purely online cycle-conserving baseline. The sweep is one
//! [`Campaign`]: 5 policies × schedules × random sets in a single
//! parallel grid (schedule-free policies run once, unscheduled).
//! Boundary re-solves are ~10³× a greedy dispatch, so the sweep runs a
//! reduced default scale; the shared solver cache keeps repeats cheap.
//!
//! ```sh
//! cargo run --release -p acs-bench --bin ablation_policies
//! ```

use acs_bench::{random_paper_sets, standard_cpu, Scale};
use acs_core::SynthesisOptions;
use acs_runtime::{Campaign, PolicySpec, ScheduleChoice, WorkloadSpec};
use acs_sim::Summary;

fn main() {
    let scale = Scale::from_env();
    let cpu = standard_cpu();
    // The reopt policy re-solves at every job boundary: cap the *default*
    // sweep so it stays in the minutes. Explicit env overrides
    // (ACS_SETS / ACS_HYPER_PERIODS / ACS_PAPER_SCALE) are honored as
    // given.
    let explicit = |k: &str| std::env::var_os(k).is_some();
    let task_sets = if explicit("ACS_SETS") || explicit("ACS_PAPER_SCALE") {
        scale.task_sets
    } else {
        scale.task_sets.min(4)
    };
    let hyper_periods = if explicit("ACS_HYPER_PERIODS") || explicit("ACS_PAPER_SCALE") {
        scale.hyper_periods
    } else {
        scale.hyper_periods.min(25)
    };
    println!(
        "Ablation A2: runtime energy by (schedule x policy), normalized to \
         no-DVS = 100 (6-task sets, ratio 0.1; {task_sets} sets x {hyper_periods} hyper-periods)\n"
    );
    let sets = random_paper_sets(6, 0.1, task_sets, scale.seed, cpu.f_max());
    let set_names: Vec<String> = sets.iter().map(|(n, _)| n.clone()).collect();
    let report = Campaign::builder()
        .task_sets(sets)
        .processor("linear", cpu)
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::no_dvs())
        .policy(PolicySpec::ccrm())
        .policy(PolicySpec::static_speed())
        .policy(PolicySpec::greedy())
        .policy(PolicySpec::reopt())
        .workload(WorkloadSpec::Paper)
        .seeds([scale.seed ^ 0xA2])
        .hyper_periods(hyper_periods)
        .synthesis(SynthesisOptions::default())
        .acs_multistart(true)
        .build()
        .expect("non-empty ablation grid")
        .run();

    let rows: [(&str, ScheduleChoice, &str); 8] = [
        (
            "no-DVS (fmax + shutdown)",
            ScheduleChoice::Unscheduled,
            "no-dvs",
        ),
        ("ccRM (online only)", ScheduleChoice::Unscheduled, "ccrm"),
        ("WCS + static speeds", ScheduleChoice::Wcs, "static"),
        ("WCS + greedy reclaim", ScheduleChoice::Wcs, "greedy"),
        ("ACS + static speeds", ScheduleChoice::Acs, "static"),
        ("ACS + greedy reclaim", ScheduleChoice::Acs, "greedy"),
        ("WCS + online reopt", ScheduleChoice::Wcs, "reopt"),
        ("ACS + online reopt", ScheduleChoice::Acs, "reopt"),
    ];
    let mut summaries = vec![Summary::new(); rows.len()];
    let mut misses = vec![0usize; rows.len()];
    for name in &set_names {
        let Some(base) = report
            .find(
                name,
                "linear",
                ScheduleChoice::Unscheduled,
                "no-dvs",
                "paper-normal",
            )
            .and_then(|c| c.stats())
            .map(|s| s.mean_energy.as_units())
        else {
            continue;
        };
        for (i, (_, schedule, policy)) in rows.iter().enumerate() {
            if let Some(stats) = report
                .find(name, "linear", *schedule, policy, "paper-normal")
                .and_then(|c| c.stats())
            {
                summaries[i].push(100.0 * stats.mean_energy.as_units() / base);
                misses[i] += stats.deadline_misses;
            }
        }
    }

    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "configuration", "energy", "std", "misses"
    );
    for (i, (label, _, _)) in rows.iter().enumerate() {
        println!(
            "{:<28} {:>10.1} {:>8.1} {:>8}",
            label,
            summaries[i].mean(),
            summaries[i].std_dev(),
            misses[i]
        );
    }
    for (cell, err) in report.failures() {
        eprintln!(
            "  [{} {} {}] {err}",
            cell.task_set, cell.schedule, cell.policy
        );
    }
    if let Some(rate) = report.solver_cache_hit_rate() {
        println!("solver cache hit rate: {:.1}%", 100.0 * rate);
    }
    println!(
        "\nExpected ordering: no-DVS > static-only > greedy ≥ reopt; \
         ACS+greedy below WCS+greedy (the paper's claim), and reopt \
         closes most of the WCS-vs-ACS gap online. ccRM has no \
         worst-case schedule and may miss deadlines at 70% utilization."
    );
}
