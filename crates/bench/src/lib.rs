//! # acs-bench
//!
//! Experiment harness for the `acsched` workspace: one binary per table
//! and figure of the paper (see `src/bin/`), plus Criterion performance
//! benches (`benches/`), built on the shared helpers in this library.
//!
//! All experiment binaries accept environment variables to trade runtime
//! for fidelity:
//!
//! * `ACS_PAPER_SCALE=1` — the paper's full protocol (100 task sets,
//!   1000 hyper-periods); roughly an hour of compute.
//! * `ACS_SETS=<n>` / `ACS_HYPER_PERIODS=<n>` — individual overrides.
//! * `ACS_SEED=<n>` — master seed (default 2005, the publication year).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use acs_core::{synthesize_acs_best, synthesize_wcs, StaticSchedule, SynthesisOptions};
use acs_model::units::{Energy, Freq, Volt};
use acs_model::TaskSet;
use acs_power::{FreqModel, Processor};
use acs_sim::{GreedyReclaim, SimOptions, Simulator};
use acs_workloads::TaskWorkloads;

/// Scale knobs for the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Random task sets per configuration (paper: 100).
    pub task_sets: usize,
    /// Hyper-periods simulated per task set (paper: 1000).
    pub hyper_periods: u64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Reads the scale from the environment (see crate docs).
    pub fn from_env() -> Self {
        let paper = std::env::var("ACS_PAPER_SCALE")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut s = if paper {
            Scale {
                task_sets: 100,
                hyper_periods: 1000,
                seed: 2005,
            }
        } else {
            Scale {
                task_sets: 10,
                hyper_periods: 200,
                seed: 2005,
            }
        };
        if let Ok(v) = std::env::var("ACS_SETS") {
            if let Ok(n) = v.parse() {
                s.task_sets = n;
            }
        }
        if let Ok(v) = std::env::var("ACS_HYPER_PERIODS") {
            if let Ok(n) = v.parse() {
                s.hyper_periods = n;
            }
        }
        if let Ok(v) = std::env::var("ACS_SEED") {
            if let Ok(n) = v.parse() {
                s.seed = n;
            }
        }
        s
    }
}

/// Resolves a checked-in scenario file under the workspace's
/// `scenarios/` directory (override the directory with
/// `ACS_SCENARIO_DIR` to point the figure binaries at your own files).
pub fn scenario_path(name: &str) -> std::path::PathBuf {
    match std::env::var_os("ACS_SCENARIO_DIR") {
        Some(dir) => std::path::Path::new(&dir).join(name),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../scenarios")
            .join(name),
    }
}

/// The experiments' reference processor: `f = 50·V` cycles/ms,
/// `V ∈ [0.3, 4] V` (the motivational example's law with a low floor so
/// slack can actually be converted into voltage reduction).
pub fn standard_cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).expect("kappa > 0"))
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .expect("valid processor")
}

/// Outcome of one ACS-vs-WCS runtime comparison.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Runtime energy under the WCS schedule.
    pub wcs_energy: Energy,
    /// Runtime energy under the ACS schedule.
    pub acs_energy: Energy,
    /// Relative improvement of ACS over WCS (`1 − acs/wcs`).
    pub improvement: f64,
    /// Deadline misses across both runs (must be 0).
    pub misses: usize,
}

/// Synthesizes WCS and multi-start ACS for `set`, simulates both under
/// identical workload draws with the greedy policy, and reports runtime
/// energies — the paper's Fig. 6 measurement.
///
/// # Errors
///
/// Propagates synthesis and simulation errors as strings (experiment
/// binaries just print them).
pub fn compare_acs_wcs(
    set: &TaskSet,
    cpu: &Processor,
    synth: &SynthesisOptions,
    hyper_periods: u64,
    seed: u64,
) -> Result<Comparison, String> {
    let wcs = synthesize_wcs(set, cpu, synth).map_err(|e| format!("wcs: {e}"))?;
    let acs = synthesize_acs_best(set, cpu, synth, &wcs).map_err(|e| format!("acs: {e}"))?;
    let (ew, m1) = run_greedy(set, cpu, &wcs, hyper_periods, seed)?;
    let (ea, m2) = run_greedy(set, cpu, &acs, hyper_periods, seed)?;
    Ok(Comparison {
        wcs_energy: ew,
        acs_energy: ea,
        improvement: acs_sim::improvement_over(ew, ea),
        misses: m1 + m2,
    })
}

/// Runs the greedy policy over sampled workloads, returning total energy
/// and deadline misses.
///
/// # Errors
///
/// Stringified simulator errors.
pub fn run_greedy(
    set: &TaskSet,
    cpu: &Processor,
    schedule: &StaticSchedule,
    hyper_periods: u64,
    seed: u64,
) -> Result<(Energy, usize), String> {
    let mut draws = TaskWorkloads::paper(set, seed);
    let out = Simulator::new(set, cpu, GreedyReclaim)
        .with_schedule(schedule)
        .with_options(SimOptions {
            hyper_periods,
            deadline_tol_ms: 1e-3,
            ..Default::default()
        })
        .run(&mut |t, i| draws.draw(t, i))
        .map_err(|e| e.to_string())?;
    Ok((out.report.energy, out.report.deadline_misses))
}

/// Generates `count` named paper-style random task sets for one
/// `(num_tasks, ratio)` experiment cell. Thin alias for
/// [`acs_workloads::paper_set_batch`] (the canonical implementation
/// moved there so scenario files share the exact same names and seeds).
pub fn random_paper_sets(
    num_tasks: usize,
    ratio: f64,
    count: usize,
    master_seed: u64,
    f_max: Freq,
) -> Vec<(String, TaskSet)> {
    acs_workloads::paper_set_batch(num_tasks, ratio, count, master_seed, f_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Cycles, Ticks};
    use acs_model::Task;

    #[test]
    fn scale_constructor_is_sane() {
        let s = Scale::from_env();
        assert!(s.task_sets >= 1);
        assert!(s.hyper_periods >= 1);
    }

    #[test]
    fn comparison_on_tiny_set() {
        let set = TaskSet::new(vec![Task::builder("t", Ticks::new(10))
            .wcec(Cycles::from_cycles(300.0))
            .acec(Cycles::from_cycles(120.0))
            .bcec(Cycles::from_cycles(30.0))
            .build()
            .unwrap()])
        .unwrap();
        let cpu = standard_cpu();
        let c = compare_acs_wcs(&set, &cpu, &acs_core::SynthesisOptions::quick(), 10, 1).unwrap();
        assert_eq!(c.misses, 0);
        assert!(c.improvement > -0.05, "improvement = {}", c.improvement);
    }
}
