//! Property-based tests for the fully preemptive expansion.

use acs_model::units::{Cycles, Ticks};
use acs_model::{Task, TaskId, TaskSet};
use acs_preempt::FullyPreemptiveSchedule;
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((1u64..30, prop::bool::ANY), 1..6).prop_map(|specs| {
        let tasks: Vec<Task> = specs
            .iter()
            .enumerate()
            .map(|(i, &(p, constrained))| {
                let deadline = if constrained && p > 1 { p - p / 3 } else { p };
                Task::builder(format!("t{i}"), Ticks::new(p))
                    .deadline(Ticks::new(deadline.max(1)))
                    .wcec(Cycles::from_cycles(10.0))
                    .build()
                    .unwrap()
            })
            .collect();
        TaskSet::new(tasks).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Segments tile the hyper-period without gaps or overlaps.
    #[test]
    fn segments_partition_hyper_period(set in arb_set()) {
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let grid = fps.grid();
        let mut prev = 0;
        for (a, b) in grid.segments() {
            prop_assert_eq!(a.get(), prev);
            prop_assert!(b > a);
            prev = b.get();
        }
        prop_assert_eq!(prev, set.hyper_period().get());
    }

    /// Every sub-instance window nests in its instance's
    /// [release, deadline] interval and matches its segment.
    #[test]
    fn windows_nest(set in arb_set()) {
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        for s in fps.sub_instances() {
            prop_assert!(s.window_start >= s.instance_release);
            prop_assert!(s.window_end <= s.instance_deadline);
            prop_assert!(s.window_end > s.window_start);
            let (a, b) = fps.grid().segment_bounds(s.segment);
            prop_assert!(s.window_start.as_ms() >= a.as_time().as_ms() - 1e-9);
            prop_assert!(s.window_end.as_ms() <= b.as_time().as_ms() + 1e-9);
        }
    }

    /// The total order is (segment, priority)-lexicographic, and chunks of
    /// one instance appear in window order.
    #[test]
    fn total_order_lexicographic(set in arb_set()) {
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        for w in fps.sub_instances().windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                a.segment < b.segment
                    || (a.segment == b.segment && a.instance.task < b.instance.task)
            );
        }
        for (tid, _) in set.iter() {
            for inst in 0..fps.instances_of(tid) {
                let ids: Vec<_> = fps
                    .chunks_of(acs_preempt::InstanceId { task: tid, index: inst })
                    .collect();
                for (k, pair) in ids.windows(2).enumerate() {
                    prop_assert!(fps.sub(pair[0]).window_end <= fps.sub(pair[1]).window_start);
                    prop_assert_eq!(fps.sub(pair[0]).chunk, k);
                }
            }
        }
    }

    /// Instance counts: each task contributes exactly hyper/period
    /// instances, and every instance has ≥ 1 chunk.
    #[test]
    fn instance_accounting(set in arb_set()) {
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let h = set.hyper_period().get();
        for (tid, task) in set.iter() {
            prop_assert_eq!(fps.instances_of(tid), h / task.period().get());
            for inst in 0..fps.instances_of(tid) {
                let n = fps
                    .chunks_of(acs_preempt::InstanceId { task: tid, index: inst })
                    .count();
                prop_assert!(n >= 1);
            }
        }
        let total: usize = (0..set.len())
            .map(|i| {
                (0..fps.instances_of(TaskId(i)))
                    .map(|j| fps.chunks_of(acs_preempt::InstanceId { task: TaskId(i), index: j }).count())
                    .sum::<usize>()
            })
            .sum();
        prop_assert_eq!(total, fps.len());
    }

    /// Expansion under a cap either fits or fails cleanly — and the cap
    /// is tight (expanding with exactly len succeeds).
    #[test]
    fn cap_is_exact(set in arb_set()) {
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let n = fps.len();
        prop_assert!(FullyPreemptiveSchedule::expand_capped(&set, n).is_ok());
        if n > 1 {
            prop_assert!(FullyPreemptiveSchedule::expand_capped(&set, n - 1).is_err());
        }
    }

    /// With harmonic periods every lower-priority release coincides with
    /// a release of the highest-priority task, so that task is never
    /// split (the paper's Fig. 4 situation). Note the expansion
    /// intentionally splits at *all* release points — including
    /// lower-priority ones — because the sequential total-order chain of
    /// the NLP needs a common grid to express every interleaving; extra
    /// split points only refine the schedule space (see module docs).
    #[test]
    fn highest_priority_task_unsplit_under_harmonic_periods(
        base in 1u64..6,
        multipliers in prop::collection::vec(1u64..6, 1..5),
    ) {
        let mut periods = vec![base];
        let mut p = base;
        for m in multipliers {
            p *= m.max(1);
            periods.push(p);
        }
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::builder(format!("t{i}"), Ticks::new(p))
                    .wcec(Cycles::from_cycles(1.0))
                    .build()
                    .unwrap()
            })
            .collect();
        let set = TaskSet::new(tasks).unwrap();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        prop_assert_eq!(fps.max_chunks_per_task()[0], 1);
    }
}
