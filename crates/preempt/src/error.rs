//! Error type for the fully preemptive expansion.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while expanding a task set into its fully preemptive
/// schedule.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PreemptError {
    /// The expansion exceeded the caller-supplied sub-instance limit.
    ///
    /// The paper caps generated task sets at one thousand sub-instances
    /// (§4); hitting this limit usually means the periods are too
    /// co-prime and the task set should be re-drawn.
    TooManySubInstances {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for PreemptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreemptError::TooManySubInstances { limit } => write!(
                f,
                "fully preemptive expansion exceeds the sub-instance limit of {limit}"
            ),
        }
    }
}

impl StdError for PreemptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_limit() {
        let e = PreemptError::TooManySubInstances { limit: 1000 };
        assert!(e.to_string().contains("1000"));
    }
}
