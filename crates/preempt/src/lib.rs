//! # acs-preempt
//!
//! Fully preemptive schedule expansion for the `acsched` workspace
//! (paper §3.1, Figs. 3–4).
//!
//! In a fixed-priority preemptive system a task instance can only be
//! preempted when a higher-priority task releases. Expanding every
//! instance at *all* such release points produces the **fully preemptive
//! schedule**: a sequence of *sub-instances* `T_{i,j,k}`, one per
//! (instance × overlapping grid segment), together with their total
//! execution order. The NLP in `acs-core` assigns each sub-instance an
//! end-time and a worst-case workload share; the runtime in `acs-sim`
//! uses those as DVS milestones.
//!
//! ## Example
//!
//! ```
//! use acs_model::{Task, TaskSet, units::{Cycles, Ticks}};
//! use acs_preempt::FullyPreemptiveSchedule;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ts = TaskSet::new(vec![
//!     Task::builder("ctrl", Ticks::new(3)).wcec(Cycles::from_cycles(10.0)).build()?,
//!     Task::builder("io",   Ticks::new(6)).wcec(Cycles::from_cycles(20.0)).build()?,
//! ])?;
//! let fps = FullyPreemptiveSchedule::expand(&ts)?;
//! assert_eq!(fps.len(), 4); // two T1 chunks, T2 split at t=3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod expansion;
pub mod feasibility;
pub mod grid;
pub mod subinstance;

pub use error::PreemptError;
pub use expansion::FullyPreemptiveSchedule;
pub use feasibility::{
    demand_bound_ms, edf_demand_feasible, edf_utilization_feasible, rm_feasible, rm_response_times,
};
pub use grid::ReleaseGrid;
pub use subinstance::{InstanceId, SubInstance, SubInstanceId};
