//! The merged release/deadline grid over one hyper-period.
//!
//! Preemptions in a fixed-priority system can only happen when some task
//! releases a new instance, so the time axis of the hyper-period splits
//! into *segments* delimited by release points (plus absolute deadlines of
//! constrained-deadline tasks, so a sub-instance never straddles its own
//! deadline). Every sub-instance of the fully preemptive schedule lives
//! inside exactly one segment.

use acs_model::units::Ticks;
use acs_model::TaskSet;

/// Sorted, deduplicated grid of all release and deadline instants in one
/// hyper-period, expressed in integer milliseconds.
///
/// The grid always contains 0 and the hyper-period `H`; segment `s` spans
/// `[point(s), point(s+1))`.
///
/// ```
/// use acs_model::{Task, TaskSet, units::{Cycles, Ticks}};
/// use acs_preempt::grid::ReleaseGrid;
///
/// // Paper Fig. 3: periods {3, 6, 9} ⇒ grid {0,3,6,9,12,15,18}.
/// let ts = TaskSet::new(vec![
///     Task::builder("t1", Ticks::new(3)).wcec(Cycles::from_cycles(1.0)).build()?,
///     Task::builder("t2", Ticks::new(6)).wcec(Cycles::from_cycles(1.0)).build()?,
///     Task::builder("t3", Ticks::new(9)).wcec(Cycles::from_cycles(1.0)).build()?,
/// ])?;
/// let grid = ReleaseGrid::of(&ts);
/// let pts: Vec<u64> = grid.points().iter().map(|t| t.get()).collect();
/// assert_eq!(pts, [0, 3, 6, 9, 12, 15, 18]);
/// assert_eq!(grid.segment_count(), 6);
/// # Ok::<(), acs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseGrid {
    points: Vec<Ticks>,
}

impl ReleaseGrid {
    /// Builds the grid for a task set.
    pub fn of(set: &TaskSet) -> Self {
        let hyper = set.hyper_period().get();
        let mut points: Vec<u64> = vec![0, hyper];
        for task in set.tasks() {
            let p = task.period().get();
            let d = task.deadline().get();
            let mut r = 0;
            while r < hyper {
                points.push(r);
                // Absolute deadline; coincides with the next release when
                // deadline == period, deduplicated below either way.
                points.push(r + d);
                r += p;
            }
        }
        points.sort_unstable();
        points.dedup();
        // Deadlines can exceed the hyper-period only if d > p, which the
        // task model forbids; still, clamp defensively.
        points.retain(|&p| p <= hyper);
        ReleaseGrid {
            points: points.into_iter().map(Ticks::new).collect(),
        }
    }

    /// All grid points, ascending; first is 0, last is the hyper-period.
    pub fn points(&self) -> &[Ticks] {
        &self.points
    }

    /// Number of segments (`points − 1`).
    pub fn segment_count(&self) -> usize {
        self.points.len() - 1
    }

    /// Bounds `[start, end)` of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= segment_count()`.
    pub fn segment_bounds(&self, s: usize) -> (Ticks, Ticks) {
        (self.points[s], self.points[s + 1])
    }

    /// Iterates over `(start, end)` bounds of every segment.
    pub fn segments(&self) -> impl Iterator<Item = (Ticks, Ticks)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::Cycles;
    use acs_model::Task;

    fn set(periods: &[u64]) -> TaskSet {
        TaskSet::new(
            periods
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    Task::builder(format!("t{i}"), Ticks::new(p))
                        .wcec(Cycles::from_cycles(1.0))
                        .build()
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn paper_fig3_grid() {
        let grid = ReleaseGrid::of(&set(&[3, 6, 9]));
        let pts: Vec<u64> = grid.points().iter().map(|t| t.get()).collect();
        assert_eq!(pts, [0, 3, 6, 9, 12, 15, 18]);
    }

    #[test]
    fn single_task_has_one_segment_per_instance() {
        let grid = ReleaseGrid::of(&set(&[5]));
        let pts: Vec<u64> = grid.points().iter().map(|t| t.get()).collect();
        assert_eq!(pts, [0, 5]);
        assert_eq!(grid.segment_count(), 1);
    }

    #[test]
    fn segments_partition_hyper_period() {
        let grid = ReleaseGrid::of(&set(&[4, 6, 10]));
        let mut expected_start = Ticks::ZERO;
        for (a, b) in grid.segments() {
            assert_eq!(a, expected_start);
            assert!(b > a);
            expected_start = b;
        }
        assert_eq!(expected_start, Ticks::new(60));
    }

    #[test]
    fn constrained_deadline_adds_points() {
        let t1 = Task::builder("a", Ticks::new(10))
            .deadline(Ticks::new(7))
            .wcec(Cycles::from_cycles(1.0))
            .build()
            .unwrap();
        let ts = TaskSet::new(vec![t1]).unwrap();
        let grid = ReleaseGrid::of(&ts);
        let pts: Vec<u64> = grid.points().iter().map(|t| t.get()).collect();
        assert_eq!(pts, [0, 7, 10]);
    }

    #[test]
    fn segment_bounds_match_points() {
        let grid = ReleaseGrid::of(&set(&[3, 6, 9]));
        assert_eq!(grid.segment_bounds(0), (Ticks::ZERO, Ticks::new(3)));
        assert_eq!(grid.segment_bounds(5), (Ticks::new(15), Ticks::new(18)));
    }
}
