//! Closed-form schedulability tests for both scheduling classes.
//!
//! These are the *analytic* companions of the expansion-based worst-case
//! verification in `acs-core::verify`: cheap necessary/sufficient tests
//! on the raw task set at a fixed speed, used by the EDF scheduling
//! class ([`acs_model::SchedulingClass::Edf`]) where the classic
//! fixed-priority machinery does not apply.
//!
//! * [`edf_utilization_feasible`] — Liu & Layland's exact EDF bound for
//!   implicit-deadline periodic sets: schedulable iff `U ≤ 1`.
//! * [`edf_demand_feasible`] — the processor-demand criterion
//!   (Baruah/Rosier): exact for constrained deadlines (`D_i ≤ T_i`),
//!   checking `dbf(t) ≤ t` at every absolute deadline in one
//!   hyper-period.
//! * [`rm_response_times`] — the classic fixed-point response-time
//!   analysis for the RM class, exact for constrained deadlines.

use acs_model::units::Freq;
use acs_model::TaskSet;

/// Slack absorbed by floating-point rounding in the utilization and
/// demand sums (mirrors [`TaskSet::check_utilization`]).
const EPS: f64 = 1e-9;

/// Exact EDF feasibility for implicit-deadline sets: `U ≤ 1` at the
/// given speed. For sets with constrained deadlines (`D < T`) this is
/// only necessary — use [`edf_demand_feasible`] there.
pub fn edf_utilization_feasible(set: &TaskSet, f: Freq) -> bool {
    set.utilization_at(f) <= 1.0 + EPS
}

/// The demand-bound function: worst-case execution time (ms, at speed
/// `f`) of all jobs that both release and have their deadline inside any
/// window of length `t` ms. For synchronous periodic sets,
/// `dbf(t) = Σ_i max(0, ⌊(t − D_i)/T_i⌋ + 1) · WCEC_i / f`.
pub fn demand_bound_ms(set: &TaskSet, f: Freq, t_ms: f64) -> f64 {
    set.tasks()
        .iter()
        .map(|task| {
            let d = task.deadline().get() as f64;
            let p = task.period().get() as f64;
            if t_ms < d {
                return 0.0;
            }
            let jobs = ((t_ms - d) / p).floor() + 1.0;
            jobs * (task.wcec() / f).as_ms()
        })
        .sum()
}

/// The processor-demand criterion for EDF: `dbf(t) ≤ t` at every
/// absolute deadline in one hyper-period. Exact for constrained
/// deadlines (`D_i ≤ T_i`, which [`acs_model::TaskBuilder`] enforces);
/// when every deadline equals its period this coincides with
/// [`edf_utilization_feasible`].
///
/// Checking up to the hyper-period suffices for `U ≤ 1` (the schedule
/// repeats); a set with `U > 1` fails the utilization test first.
pub fn edf_demand_feasible(set: &TaskSet, f: Freq) -> bool {
    if !edf_utilization_feasible(set, f) {
        return false;
    }
    // The demand function only steps at absolute deadlines
    // `k·T_i + D_i`; checking those points is exhaustive.
    let hyper = set.hyper_period().get();
    let mut deadlines: Vec<u64> = Vec::new();
    for task in set.tasks() {
        let p = task.period().get();
        let d = task.deadline().get();
        let mut release = 0u64;
        while release < hyper {
            deadlines.push(release + d);
            release += p;
        }
    }
    deadlines.sort_unstable();
    deadlines.dedup();
    deadlines
        .into_iter()
        .all(|t| demand_bound_ms(set, f, t as f64) <= t as f64 + EPS)
}

/// Classic rate-monotonic response-time analysis at speed `f`: iterates
/// `R_i = C_i + Σ_{j<i} ⌈R_i/T_j⌉·C_j` to its fixed point per task
/// (tasks are already in priority order inside the set). Returns the
/// worst-case response times in ms, or `None` as soon as one task's
/// response exceeds its deadline (the set is RM-infeasible at `f`).
///
/// Exact for constrained deadlines under fully preemptive fixed-priority
/// dispatch — the discipline the engine's RM class implements.
pub fn rm_response_times(set: &TaskSet, f: Freq) -> Option<Vec<f64>> {
    let exec_ms: Vec<f64> = set.tasks().iter().map(|t| (t.wcec() / f).as_ms()).collect();
    let mut responses = Vec::with_capacity(set.len());
    for (i, task) in set.tasks().iter().enumerate() {
        let deadline = task.deadline().get() as f64;
        let mut r = exec_ms[i];
        loop {
            let interference: f64 = set.tasks()[..i]
                .iter()
                .enumerate()
                .map(|(j, hp)| (r / hp.period().get() as f64).ceil() * exec_ms[j])
                .sum();
            let next = exec_ms[i] + interference;
            if next > deadline + EPS {
                return None;
            }
            if (next - r).abs() <= EPS {
                r = next;
                break;
            }
            r = next;
        }
        responses.push(r);
    }
    Some(responses)
}

/// `true` when the RM response-time analysis admits every task at `f`.
pub fn rm_feasible(set: &TaskSet, f: Freq) -> bool {
    rm_response_times(set, f).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Cycles, Ticks};
    use acs_model::Task;

    fn task(name: &str, period: u64, wcec: f64) -> Task {
        Task::builder(name, Ticks::new(period))
            .wcec(Cycles::from_cycles(wcec))
            .build()
            .unwrap()
    }

    fn f(cycles_per_ms: f64) -> Freq {
        Freq::from_cycles_per_ms(cycles_per_ms)
    }

    /// The classic RM-infeasible / EDF-feasible separator: U = 1 exactly.
    /// Periods {10, 15}: RM misses at full utilization, EDF does not.
    fn full_util_set() -> TaskSet {
        TaskSet::new(vec![task("a", 10, 500.0), task("b", 15, 750.0)]).unwrap()
    }

    #[test]
    fn edf_admits_full_utilization_where_rm_does_not() {
        let set = full_util_set();
        let speed = f(100.0); // U = 0.5 + 0.5 = 1.0
        assert!(edf_utilization_feasible(&set, speed));
        assert!(edf_demand_feasible(&set, speed));
        assert!(
            !rm_feasible(&set, speed),
            "RM cannot schedule U=1 on non-harmonic periods"
        );
        // With headroom both classes admit the set.
        assert!(rm_feasible(&set, f(150.0)));
    }

    #[test]
    fn overutilized_fails_both() {
        let set = full_util_set();
        let slow = f(90.0); // U > 1
        assert!(!edf_utilization_feasible(&set, slow));
        assert!(!edf_demand_feasible(&set, slow));
        assert!(!rm_feasible(&set, slow));
    }

    #[test]
    fn demand_bound_steps_at_deadlines() {
        let set = full_util_set();
        let speed = f(100.0);
        // Just before the first deadline: only nothing is due.
        assert_eq!(demand_bound_ms(&set, speed, 9.9), 0.0);
        // At t=10 task a's first job is due: 5 ms of demand.
        assert!((demand_bound_ms(&set, speed, 10.0) - 5.0).abs() < 1e-12);
        // At t=15: a's first (5) + b's first (7.5).
        assert!((demand_bound_ms(&set, speed, 15.0) - 12.5).abs() < 1e-12);
        // At the hyper-period the demand equals U·H = 30.
        assert!((demand_bound_ms(&set, speed, 30.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn constrained_deadlines_tighten_edf() {
        // One task, deadline half its period: U = 0.5 but the demand in
        // [0, 5] is 5 ms — exactly feasible; shrink the deadline further
        // and it fails while utilization stays 0.5.
        let tight = |d: u64| {
            TaskSet::new(vec![Task::builder("t", Ticks::new(10))
                .deadline(Ticks::new(d))
                .wcec(Cycles::from_cycles(500.0))
                .build()
                .unwrap()])
            .unwrap()
        };
        let speed = f(100.0);
        assert!(edf_demand_feasible(&tight(5), speed));
        assert!(!edf_demand_feasible(&tight(4), speed));
        assert!(
            edf_utilization_feasible(&tight(4), speed),
            "U-test is blind to deadlines"
        );
    }

    #[test]
    fn response_times_match_hand_computation() {
        // Periods {4, 8}, exec {1 ms, 3 ms} at f=100: R0 = 1,
        // R1 = 3 + ⌈R1/4⌉·1 → 3+1=4, 3+⌈4/4⌉=4 — fixed point 4... but
        // 4 ≤ 8 so feasible; iterate: R1 = 4, next = 3 + ceil(4/4)*1 = 4.
        let set = TaskSet::new(vec![task("hi", 4, 100.0), task("lo", 8, 300.0)]).unwrap();
        let r = rm_response_times(&set, f(100.0)).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert!((r[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_full_utilization_is_rm_feasible() {
        // Harmonic periods reach the RM bound of 1.
        let set = TaskSet::new(vec![task("a", 10, 500.0), task("b", 20, 1000.0)]).unwrap();
        let speed = f(100.0); // U = 1.0
        assert!(rm_feasible(&set, speed));
        assert!(edf_demand_feasible(&set, speed));
    }
}
