//! Construction of the fully preemptive schedule (paper §3.1, Figs. 3–4).

use crate::error::PreemptError;
use crate::grid::ReleaseGrid;
use crate::subinstance::{InstanceId, SubInstance, SubInstanceId};
use acs_model::units::{Ticks, Time};
use acs_model::{SchedulingClass, TaskId, TaskSet};

/// The fully preemptive schedule: every instance of every task expanded
/// into sub-instances at *all possible preemption points*, together with
/// the total execution order.
///
/// Within one grid segment the active tasks' sub-instances are ordered by
/// priority (a released higher-priority task always preempts, §2.1);
/// across segments, by time. Concatenating gives the paper's total order
/// `T1,1 ≤ T2,1,1 ≤ T3,1,1 ≤ T1,2 ≤ T2,1,2 ≤ ...` for Fig. 4.
///
/// ```
/// use acs_model::{Task, TaskSet, units::{Cycles, Ticks}};
/// use acs_preempt::FullyPreemptiveSchedule;
///
/// // Paper Figs. 3–4: periods {3, 6, 9}.
/// let ts = TaskSet::new(vec![
///     Task::builder("t1", Ticks::new(3)).wcec(Cycles::from_cycles(1.0)).build()?,
///     Task::builder("t2", Ticks::new(6)).wcec(Cycles::from_cycles(1.0)).build()?,
///     Task::builder("t3", Ticks::new(9)).wcec(Cycles::from_cycles(1.0)).build()?,
/// ])?;
/// let fps = FullyPreemptiveSchedule::expand(&ts)?;
/// // T2 splits in two, T3 in three chunks per instance.
/// assert_eq!(fps.sub_instances().len(), 6 + 3*2 + 2*3);
/// let order: Vec<String> = fps.sub_instances().iter().take(3)
///     .map(|s| s.label()).collect();
/// assert_eq!(order, ["T0,1,1", "T1,1,1", "T2,1,1"]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FullyPreemptiveSchedule {
    subs: Vec<SubInstance>,
    /// `chunks[task][instance]` = sub-instance indices of that instance,
    /// in chunk order.
    chunks: Vec<Vec<Vec<usize>>>,
    /// Range of `subs` indices per grid segment.
    segment_ranges: Vec<(usize, usize)>,
    grid: ReleaseGrid,
    hyper_period: Ticks,
    /// The scheduling class the within-segment order encodes (taken from
    /// [`TaskSet::class`] at expansion time).
    class: SchedulingClass,
}

impl FullyPreemptiveSchedule {
    /// Expands a task set without a sub-instance cap.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid task sets but kept fallible for
    /// forward compatibility with [`FullyPreemptiveSchedule::expand_capped`].
    pub fn expand(set: &TaskSet) -> Result<Self, PreemptError> {
        Self::expand_capped(set, usize::MAX)
    }

    /// Expands a task set, failing once more than `limit` sub-instances
    /// would be generated (the paper's experiments cap at 1000).
    ///
    /// # Errors
    ///
    /// [`PreemptError::TooManySubInstances`] when the cap is exceeded.
    pub fn expand_capped(set: &TaskSet, limit: usize) -> Result<Self, PreemptError> {
        let grid = ReleaseGrid::of(set);
        let hyper = set.hyper_period();
        let mut subs: Vec<SubInstance> = Vec::new();
        let mut chunks: Vec<Vec<Vec<usize>>> = set
            .iter()
            .map(|(id, _)| vec![Vec::new(); set.instances_of(id) as usize])
            .collect();
        let mut segment_ranges = Vec::with_capacity(grid.segment_count());

        for (seg_idx, (seg_start, seg_end)) in grid.segments().enumerate() {
            let range_start = subs.len();
            // Collect the instances active in this segment, then order
            // them by the set's scheduling class. A segment never
            // straddles a release or deadline (both are grid points), so
            // the active set and its deadlines — hence the class order —
            // are fixed across the whole segment.
            let mut active: Vec<(TaskId, u64, u64)> = Vec::new();
            for (tid, task) in set.iter() {
                let p = task.period().get();
                let a = seg_start.get();
                let instance_index = a / p;
                let release = instance_index * p;
                let deadline = release + task.deadline().get();
                // Active iff the segment begins before the instance's
                // absolute deadline.
                if a >= deadline {
                    continue;
                }
                debug_assert!(seg_end.get() <= deadline, "segment straddles a deadline");
                active.push((tid, instance_index, deadline));
            }
            match set.class() {
                // Tasks are already in priority order inside the set.
                SchedulingClass::FixedPriorityRm => {}
                // Earliest absolute deadline first; ties toward the
                // lower task index — exactly the runtime dispatcher's
                // preference order, so worst-case execution follows
                // this total order under budget enforcement.
                SchedulingClass::Edf => {
                    active.sort_by_key(|&(tid, _, deadline)| (deadline, tid));
                }
            }
            // Precedence refinement: when the set carries a task graph,
            // a chunk of a successor cannot run while a predecessor of
            // the same graph instance is still active, so the class
            // order is topologically refined — repeatedly emit the
            // earliest entry (in class order) whose in-segment
            // predecessors have all been emitted. Edge endpoints share a
            // period, so co-active endpoints always belong to the same
            // graph instance. A no-op for edge-free sets.
            if let Some(graph) = set.graph().filter(|g| !g.is_empty()) {
                let mut in_segment = vec![false; set.len()];
                for &(tid, _, _) in &active {
                    in_segment[tid.0] = true;
                }
                let mut emitted = vec![false; set.len()];
                let mut remaining: Vec<Option<(TaskId, u64, u64)>> =
                    active.iter().copied().map(Some).collect();
                let mut refined = Vec::with_capacity(active.len());
                while refined.len() < active.len() {
                    let pos = remaining
                        .iter()
                        .position(|e| {
                            e.is_some_and(|(tid, _, _)| {
                                graph
                                    .preds_of(tid)
                                    .iter()
                                    .all(|p| !in_segment[p.0] || emitted[p.0])
                            })
                        })
                        .expect("the active restriction of a DAG has a source");
                    let entry = remaining[pos].take().expect("position points at Some");
                    emitted[entry.0 .0] = true;
                    refined.push(entry);
                }
                active = refined;
            }
            for (tid, instance_index, deadline) in active {
                let task = set.task(tid);
                let p = task.period().get();
                let release = instance_index * p;
                if subs.len() == limit {
                    return Err(PreemptError::TooManySubInstances { limit });
                }
                let instance = InstanceId {
                    task: tid,
                    index: instance_index,
                };
                let chunk_list = &mut chunks[tid.0][instance_index as usize];
                let sub = SubInstance {
                    id: SubInstanceId(subs.len()),
                    instance,
                    chunk: chunk_list.len(),
                    segment: seg_idx,
                    window_start: seg_start.as_time(),
                    window_end: seg_end.as_time(),
                    instance_release: Time::from_ms(release as f64),
                    instance_deadline: Time::from_ms(deadline as f64),
                };
                chunk_list.push(subs.len());
                subs.push(sub);
            }
            segment_ranges.push((range_start, subs.len()));
        }

        Ok(FullyPreemptiveSchedule {
            subs,
            chunks,
            segment_ranges,
            grid,
            hyper_period: hyper,
            class: set.class(),
        })
    }

    /// The scheduling class whose within-segment order this expansion
    /// encodes. Milestones synthesized on it are only valid when the
    /// runtime dispatches under the same class (the engine enforces
    /// this).
    pub fn class(&self) -> SchedulingClass {
        self.class
    }

    /// All sub-instances in total execution order.
    pub fn sub_instances(&self) -> &[SubInstance] {
        &self.subs
    }

    /// The sub-instance at a given position of the total order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn sub(&self, id: SubInstanceId) -> &SubInstance {
        &self.subs[id.0]
    }

    /// Number of sub-instances.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` when the expansion is empty (cannot happen for valid sets;
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Sub-instance ids of one instance, in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if the instance does not exist in this hyper-period.
    pub fn chunks_of(&self, instance: InstanceId) -> impl Iterator<Item = SubInstanceId> + '_ {
        self.chunks[instance.task.0][instance.index as usize]
            .iter()
            .map(|&i| SubInstanceId(i))
    }

    /// Number of instances task `task` releases in the hyper-period.
    pub fn instances_of(&self, task: TaskId) -> u64 {
        self.chunks[task.0].len() as u64
    }

    /// Number of tasks in the expanded set.
    pub fn task_count(&self) -> usize {
        self.chunks.len()
    }

    /// Sub-instances of grid segment `s`, in class order (priority
    /// order under RM, deadline order under EDF).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn segment_subs(&self, s: usize) -> &[SubInstance] {
        let (a, b) = self.segment_ranges[s];
        &self.subs[a..b]
    }

    /// The release/deadline grid.
    pub fn grid(&self) -> &ReleaseGrid {
        &self.grid
    }

    /// Hyper-period of the underlying task set.
    pub fn hyper_period(&self) -> Ticks {
        self.hyper_period
    }

    /// Upper bound `K_i` on the number of chunks any single instance of
    /// each task has (paper's "upper bound of the number of sub-instances").
    pub fn max_chunks_per_task(&self) -> Vec<usize> {
        self.chunks
            .iter()
            .map(|per_instance| per_instance.iter().map(Vec::len).max().unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::Cycles;
    use acs_model::Task;

    fn set(periods: &[u64]) -> TaskSet {
        TaskSet::new(
            periods
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    Task::builder(format!("t{i}"), Ticks::new(p))
                        .wcec(Cycles::from_cycles(1.0))
                        .build()
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    /// The paper's running example (Figs. 3–4): periods {3, 6, 9}.
    fn fig34() -> FullyPreemptiveSchedule {
        FullyPreemptiveSchedule::expand(&set(&[3, 6, 9])).unwrap()
    }

    /// EDF expansion reorders within segments by absolute deadline: in
    /// segment [10, 15) of a {10, 15} set, t1's first instance (deadline
    /// 15) precedes t0's second (deadline 20); under RM the index order
    /// holds everywhere.
    #[test]
    fn edf_orders_segments_by_deadline() {
        let rm = FullyPreemptiveSchedule::expand(&set(&[10, 15])).unwrap();
        assert_eq!(rm.class(), acs_model::SchedulingClass::FixedPriorityRm);
        let edf_set = set(&[10, 15]).with_class(acs_model::SchedulingClass::Edf);
        let edf = FullyPreemptiveSchedule::expand(&edf_set).unwrap();
        assert_eq!(edf.class(), acs_model::SchedulingClass::Edf);
        // Same chunks per instance, same windows — only order changes.
        assert_eq!(rm.len(), edf.len());
        let seg = |fps: &FullyPreemptiveSchedule, s: usize| -> Vec<(usize, u64)> {
            fps.segment_subs(s)
                .iter()
                .map(|sub| (sub.instance.task.0, sub.instance.index))
                .collect()
        };
        // Segment 0 = [0, 10): deadlines 10 < 15 agree with indices.
        assert_eq!(seg(&rm, 0), seg(&edf, 0));
        // Segment 1 = [10, 15): RM puts t0 (instance 1, deadline 20)
        // first; EDF puts t1 (instance 0, deadline 15) first.
        assert_eq!(seg(&rm, 1), vec![(0, 1), (1, 0)]);
        assert_eq!(seg(&edf, 1), vec![(1, 0), (0, 1)]);
        // Equal-period sets collapse to the RM order exactly.
        let frame_rm = FullyPreemptiveSchedule::expand(&set(&[12, 12, 12])).unwrap();
        let frame_edf = FullyPreemptiveSchedule::expand(
            &set(&[12, 12, 12]).with_class(acs_model::SchedulingClass::Edf),
        )
        .unwrap();
        assert_eq!(frame_rm.sub_instances(), frame_edf.sub_instances());
    }

    /// A task graph topologically refines the within-segment order:
    /// with `t1 -> t0` on an equal-period frame, t0's chunk moves after
    /// its predecessor's while unrelated tasks keep their class order.
    #[test]
    fn dag_refines_segment_order() {
        use acs_model::TaskGraph;
        let base = set(&[6, 6, 6]);
        let g = TaskGraph::new(&base, [("t1", "t0")]).unwrap();
        let fps = FullyPreemptiveSchedule::expand(&base.clone().with_graph(g)).unwrap();
        let order: Vec<usize> = fps
            .segment_subs(0)
            .iter()
            .map(|s| s.instance.task.0)
            .collect();
        assert_eq!(order, [1, 0, 2]);
        // Edge-free graphs leave the expansion byte-identical.
        let g0 = TaskGraph::new::<&str>(&base, []).unwrap();
        let plain = FullyPreemptiveSchedule::expand(&base).unwrap();
        let gated = FullyPreemptiveSchedule::expand(&base.clone().with_graph(g0)).unwrap();
        assert_eq!(plain.sub_instances(), gated.sub_instances());
        // Chains refine transitively: t2 -> t1 -> t0 reverses the frame.
        let chain = TaskGraph::new(&base, [("t2", "t1"), ("t1", "t0")]).unwrap();
        let fps = FullyPreemptiveSchedule::expand(&base.with_graph(chain)).unwrap();
        let order: Vec<usize> = fps
            .segment_subs(0)
            .iter()
            .map(|s| s.instance.task.0)
            .collect();
        assert_eq!(order, [2, 1, 0]);
    }

    #[test]
    fn fig34_chunk_counts() {
        let fps = fig34();
        // T1: 6 instances × 1 chunk, T2: 3 × 2, T3: 2 × 3.
        assert_eq!(fps.instances_of(TaskId(0)), 6);
        assert_eq!(fps.instances_of(TaskId(1)), 3);
        assert_eq!(fps.instances_of(TaskId(2)), 2);
        assert_eq!(fps.len(), 6 + 6 + 6);
        assert_eq!(fps.max_chunks_per_task(), vec![1, 2, 3]);
    }

    #[test]
    fn fig34_total_order_prefix() {
        let fps = fig34();
        let labels: Vec<String> = fps.sub_instances().iter().map(|s| s.label()).collect();
        // Paper: T1,1 ; T2,1,1 ; T3,1,1 ; T1,2 ; T2,1,2 ; T3,1,2 ; T1,3 ; ...
        assert_eq!(
            &labels[..8],
            &[
                "T0,1,1", "T1,1,1", "T2,1,1", // segment [0,3)
                "T0,2,1", "T1,1,2", "T2,1,2", // segment [3,6)
                "T0,3,1", "T1,2,1", // segment [6,9) starts
            ]
        );
    }

    #[test]
    fn windows_nest_inside_instance() {
        let fps = fig34();
        for s in fps.sub_instances() {
            assert!(s.window_start.as_ms() >= s.instance_release.as_ms());
            assert!(s.window_end.as_ms() <= s.instance_deadline.as_ms());
            assert!(s.window_end > s.window_start);
        }
    }

    #[test]
    fn chunks_are_contiguous_in_time_and_order() {
        let fps = fig34();
        for task in 0..3 {
            for inst in 0..fps.instances_of(TaskId(task)) {
                let ids: Vec<_> = fps
                    .chunks_of(InstanceId {
                        task: TaskId(task),
                        index: inst,
                    })
                    .collect();
                assert!(!ids.is_empty());
                for (k, pair) in ids.windows(2).enumerate() {
                    let a = fps.sub(pair[0]);
                    let b = fps.sub(pair[1]);
                    assert!(a.id < b.id);
                    assert_eq!(a.chunk, k);
                    assert!(a.window_end <= b.window_start);
                }
            }
        }
    }

    #[test]
    fn total_order_is_segment_then_priority() {
        let fps = FullyPreemptiveSchedule::expand(&set(&[4, 6, 10])).unwrap();
        for pair in fps.sub_instances().windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.segment < b.segment
                    || (a.segment == b.segment && a.instance.task < b.instance.task),
                "order violated between {} and {}",
                a.label(),
                b.label()
            );
        }
    }

    #[test]
    fn segment_subs_slices() {
        let fps = fig34();
        assert_eq!(fps.segment_subs(0).len(), 3);
        // Segment [15,18): T1 instance 6, T2 not active (deadline 18 > 15
        // means instance 3 of T2 [12,18) IS active), T3 instance 2 active.
        let last = fps.segment_subs(5);
        let labels: Vec<String> = last.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["T0,6,1", "T1,3,2", "T2,2,3"]);
    }

    #[test]
    fn single_task_trivial_expansion() {
        let fps = FullyPreemptiveSchedule::expand(&set(&[7])).unwrap();
        assert_eq!(fps.len(), 1);
        let s = &fps.sub_instances()[0];
        assert_eq!(s.chunk, 0);
        assert_eq!(s.window_start.as_ms(), 0.0);
        assert_eq!(s.window_end.as_ms(), 7.0);
        assert!(!fps.is_empty());
    }

    #[test]
    fn cap_is_enforced() {
        let err = FullyPreemptiveSchedule::expand_capped(&set(&[3, 6, 9]), 10).unwrap_err();
        assert_eq!(err, PreemptError::TooManySubInstances { limit: 10 });
        assert!(FullyPreemptiveSchedule::expand_capped(&set(&[3, 6, 9]), 18).is_ok());
    }

    #[test]
    fn constrained_deadline_limits_chunks() {
        // Low-priority task with deadline 7 < period 10; high-priority
        // period 5. Grid: 0,5,7,10. Instance of the low task only covers
        // [0,5) and [5,7).
        let tasks = vec![
            Task::builder("hi", Ticks::new(5))
                .wcec(Cycles::from_cycles(1.0))
                .build()
                .unwrap(),
            Task::builder("lo", Ticks::new(10))
                .deadline(Ticks::new(7))
                .wcec(Cycles::from_cycles(1.0))
                .build()
                .unwrap(),
        ];
        let ts = TaskSet::new(tasks).unwrap();
        let fps = FullyPreemptiveSchedule::expand(&ts).unwrap();
        let lo_chunks: Vec<_> = fps
            .chunks_of(InstanceId {
                task: TaskId(1),
                index: 0,
            })
            .map(|id| {
                let s = fps.sub(id);
                (s.window_start.as_ms(), s.window_end.as_ms())
            })
            .collect();
        assert_eq!(lo_chunks, [(0.0, 5.0), (5.0, 7.0)]);
        // No sub-instance of `lo` may live in [7, 10).
        for s in fps.sub_instances() {
            if s.instance.task == TaskId(1) {
                assert!(s.window_end.as_ms() <= 7.0);
            }
        }
    }

    #[test]
    fn equal_period_tasks_do_not_split_each_other() {
        let fps = FullyPreemptiveSchedule::expand(&set(&[5, 5])).unwrap();
        // Two tasks, same period: one segment, each instance whole.
        assert_eq!(fps.len(), 2);
        assert_eq!(fps.max_chunks_per_task(), vec![1, 1]);
    }

    #[test]
    fn sub_count_formula_against_brute_force() {
        // For deadline == period, the number of sub-instances of task i
        // equals the number of grid segments that fall inside its
        // instances' windows, i.e. all segments. Cross-check totals.
        for periods in [&[2, 3][..], &[4, 6, 10][..], &[3, 5, 15][..]] {
            let ts = set(periods);
            let fps = FullyPreemptiveSchedule::expand(&ts).unwrap();
            let segs = fps.grid().segment_count();
            assert_eq!(fps.len(), segs * periods.len());
        }
    }
}
