//! Identifiers and records for task instances and their sub-instances.

use acs_model::units::Time;
use acs_model::TaskId;
use std::fmt;

/// One release (job) of a periodic task within the hyper-period.
///
/// `index` counts releases from 0, so the instance's absolute release time
/// is `index · period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// The releasing task.
    pub task: TaskId,
    /// Zero-based release index within the hyper-period.
    pub index: u64,
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper notation T_{i,j} with 1-based j.
        write!(f, "{},{}", self.task, self.index + 1)
    }
}

/// Position of a sub-instance in the total execution order of the fully
/// preemptive schedule. `SubInstanceId(0)` runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubInstanceId(pub usize);

impl fmt::Display for SubInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// One sub-instance `T_{i,j,k}`: the piece of instance `T_{i,j}` that can
/// execute inside one segment of the release grid (paper §3.1).
///
/// `window_start`/`window_end` are the segment bounds intersected with the
/// instance's `[release, deadline]` interval; all of the sub-instance's
/// execution — in *any* runtime scenario — happens inside this window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubInstance {
    /// Position in the total order.
    pub id: SubInstanceId,
    /// The parent instance.
    pub instance: InstanceId,
    /// Zero-based chunk index `k` within the parent instance.
    pub chunk: usize,
    /// Index of the grid segment this sub-instance lives in.
    pub segment: usize,
    /// Earliest time this sub-instance may execute (segment start).
    pub window_start: Time,
    /// Latest time this sub-instance may still execute (segment end,
    /// clipped to the instance deadline).
    pub window_end: Time,
    /// Absolute release of the parent instance.
    pub instance_release: Time,
    /// Absolute deadline of the parent instance.
    pub instance_deadline: Time,
}

impl SubInstance {
    /// Paper-style label `T_{i,j,k}` (1-based), e.g. `T2,1,2`.
    pub fn label(&self) -> String {
        format!("{},{}", self.instance, self.chunk + 1)
    }

    /// Length of the execution window.
    pub fn window_span(&self) -> acs_model::units::TimeSpan {
        self.window_end - self.window_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        let inst = InstanceId {
            task: TaskId(1),
            index: 0,
        };
        assert_eq!(inst.to_string(), "T1,1");
        assert_eq!(SubInstanceId(4).to_string(), "u4");
    }

    #[test]
    fn label_and_window() {
        let s = SubInstance {
            id: SubInstanceId(0),
            instance: InstanceId {
                task: TaskId(2),
                index: 1,
            },
            chunk: 2,
            segment: 5,
            window_start: Time::from_ms(6.0),
            window_end: Time::from_ms(9.0),
            instance_release: Time::from_ms(0.0),
            instance_deadline: Time::from_ms(9.0),
        };
        assert_eq!(s.label(), "T2,2,3");
        assert_eq!(s.window_span().as_ms(), 3.0);
    }
}
