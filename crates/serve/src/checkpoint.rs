//! Append-only, CRC-guarded campaign checkpoints.
//!
//! One file per campaign id, `<ckpt_dir>/<id>.ckpt`. Every line is
//!
//! ```text
//! <crc32-ieee, 8 lowercase hex digits> <flat JSON object>
//! ```
//!
//! with the CRC computed over the JSON bytes. The first line is a
//! header naming the campaign, the scenario fingerprint and the grid
//! shape; each subsequent line records one finished chunk with its
//! exact CSV rows:
//!
//! ```text
//! {"type":"header","campaign":"...","fingerprint":"<16 hex>",
//!  "cells":N,"runs":N,"chunk_size":C}
//! {"type":"chunk","chunk":K,"lo":A,"hi":B,"failed":F,"rows":[...]}
//! ```
//!
//! Appends are flushed and `fsync`'d line-at-a-time, so a crash leaves
//! at most one truncated line at the tail. The loader verifies each
//! line's CRC and silently *skips* (but counts) any line that is
//! truncated, corrupt or unparsable — the corresponding chunk simply
//! re-runs on resume, which is always safe because chunks are
//! deterministic. A bad or missing header invalidates the whole file.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::json::{self, ObjectBuilder};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The checkpoint header: identity and grid shape of the campaign the
/// chunk lines below it belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Campaign id the file belongs to.
    pub campaign: String,
    /// Scenario fingerprint (16 lowercase hex digits) at write time.
    pub fingerprint: String,
    /// Grid cells in the campaign.
    pub cells: usize,
    /// Simulator runs (cells × seeds) — a second structural guard.
    pub runs: usize,
    /// Cells per chunk used when the file was created. Resume reuses
    /// this so chunk boundaries line up with the recorded ranges.
    pub chunk_size: usize,
}

/// One finished chunk: its cell range and the exact CSV rows streamed
/// for it, in grid order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Chunk index (`lo = chunk * chunk_size`).
    pub chunk: usize,
    /// First cell index (inclusive).
    pub lo: usize,
    /// Last cell index (exclusive).
    pub hi: usize,
    /// Failed cells inside the chunk.
    pub failed: usize,
    /// One `CsvSink` row per cell, `hi - lo` of them.
    pub rows: Vec<String>,
}

/// A checkpoint file loaded for resume.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The validated header.
    pub header: Header,
    /// Finished chunks by chunk index. Duplicate entries for a chunk
    /// keep the last (re-runs append, never rewrite).
    pub chunks: HashMap<usize, ChunkEntry>,
    /// Lines dropped by CRC/parse validation — their chunks re-run.
    pub corrupt_lines: usize,
}

fn encode_line(payload: &str) -> String {
    format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
}

fn decode_line(line: &str) -> Option<&str> {
    let (crc_hex, payload) = line.split_once(' ')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc32(payload.as_bytes()) == want).then_some(payload)
}

fn header_line(h: &Header) -> String {
    let mut b = ObjectBuilder::frame("header");
    b.push_str("campaign", &h.campaign)
        .push_str("fingerprint", &h.fingerprint)
        .push_u64("cells", h.cells as u64)
        .push_u64("runs", h.runs as u64)
        .push_u64("chunk_size", h.chunk_size as u64);
    encode_line(&b.finish())
}

fn chunk_line(e: &ChunkEntry) -> String {
    let mut b = ObjectBuilder::frame("chunk");
    b.push_u64("chunk", e.chunk as u64)
        .push_u64("lo", e.lo as u64)
        .push_u64("hi", e.hi as u64)
        .push_u64("failed", e.failed as u64)
        .push_str_list("rows", &e.rows);
    encode_line(&b.finish())
}

/// An open checkpoint file accepting chunk appends.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
}

impl CheckpointWriter {
    /// Create (truncating any previous run) a checkpoint for a fresh
    /// campaign and durably write its header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from create/write/sync.
    pub fn create(path: &Path, header: &Header) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::create(path)?;
        let mut w = Self { file };
        w.append_raw(&header_line(header))?;
        Ok(w)
    }

    /// Open an existing checkpoint for appending (resume path — the
    /// header is already on disk and validated by the loader).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from open.
    pub fn open_append(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self { file })
    }

    /// Durably record one finished chunk: the line is written, flushed
    /// and `fsync`'d before this returns, so a kill after the matching
    /// `record` frames were streamed can never lose the chunk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from write/sync.
    pub fn append_chunk(&mut self, entry: &ChunkEntry) -> io::Result<()> {
        self.append_raw(&chunk_line(entry))
    }

    fn append_raw(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()
    }
}

/// Load a checkpoint for resume.
///
/// Returns `Ok(None)` when the file does not exist or its header line
/// is missing/corrupt (nothing to resume — the campaign starts fresh).
/// Corrupt or truncated *chunk* lines are counted in
/// [`LoadedCheckpoint::corrupt_lines`] and their chunks are simply
/// absent from the map, so only they re-run.
///
/// # Errors
///
/// Propagates filesystem read errors other than "not found".
pub fn load(path: &Path) -> io::Result<Option<LoadedCheckpoint>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(first)) => match decode_line(&first).and_then(parse_header) {
            Some(h) => h,
            None => return Ok(None),
        },
        _ => return Ok(None),
    };
    let mut chunks = HashMap::new();
    let mut corrupt_lines = 0usize;
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        match decode_line(&line).and_then(|p| parse_chunk(p, &header)) {
            Some(entry) => {
                chunks.insert(entry.chunk, entry);
            }
            None => corrupt_lines += 1,
        }
    }
    Ok(Some(LoadedCheckpoint {
        header,
        chunks,
        corrupt_lines,
    }))
}

fn parse_header(payload: &str) -> Option<Header> {
    let obj = json::parse_object(payload).ok()?;
    if obj.str_field("type").ok()? != "header" {
        return None;
    }
    Some(Header {
        campaign: obj.str_field("campaign").ok()?.to_string(),
        fingerprint: obj.str_field("fingerprint").ok()?.to_string(),
        cells: obj.u64_field("cells").ok()? as usize,
        runs: obj.u64_field("runs").ok()? as usize,
        chunk_size: (obj.u64_field("chunk_size").ok()? as usize).max(1),
    })
}

fn parse_chunk(payload: &str, header: &Header) -> Option<ChunkEntry> {
    let obj = json::parse_object(payload).ok()?;
    if obj.str_field("type").ok()? != "chunk" {
        return None;
    }
    let entry = ChunkEntry {
        chunk: obj.u64_field("chunk").ok()? as usize,
        lo: obj.u64_field("lo").ok()? as usize,
        hi: obj.u64_field("hi").ok()? as usize,
        failed: obj.u64_field("failed").ok()? as usize,
        rows: obj.str_list_field("rows").ok()?.to_vec(),
    };
    // Structural sanity: the range must match the header's chunking and
    // carry one row per cell, else replaying it would corrupt output.
    let lo = entry.chunk.checked_mul(header.chunk_size)?;
    let hi = lo.saturating_add(header.chunk_size).min(header.cells);
    (entry.lo == lo && entry.hi == hi && entry.rows.len() == hi - lo && hi > lo).then_some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("acs-serve-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("c.ckpt")
    }

    fn header() -> Header {
        Header {
            campaign: "demo".into(),
            fingerprint: "00aabbccddeeff11".into(),
            cells: 5,
            runs: 10,
            chunk_size: 2,
        }
    }

    fn entry(chunk: usize) -> ChunkEntry {
        let lo = chunk * 2;
        let hi = (lo + 2).min(5);
        ChunkEntry {
            chunk,
            lo,
            hi,
            failed: 0,
            rows: (lo..hi).map(|i| format!("set,cpu,row {i}")).collect(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trips_header_and_chunks() {
        let path = tmp("roundtrip");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        w.append_chunk(&entry(0)).unwrap();
        w.append_chunk(&entry(2)).unwrap();
        let loaded = load(&path).unwrap().expect("checkpoint should load");
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.corrupt_lines, 0);
        assert_eq!(loaded.chunks.len(), 2);
        assert_eq!(loaded.chunks[&0], entry(0));
        assert_eq!(loaded.chunks[&2], entry(2));
        assert!(!loaded.chunks.contains_key(&1));
    }

    #[test]
    fn reopen_appends_without_clobbering() {
        let path = tmp("reopen");
        CheckpointWriter::create(&path, &header())
            .unwrap()
            .append_chunk(&entry(0))
            .unwrap();
        CheckpointWriter::open_append(&path)
            .unwrap()
            .append_chunk(&entry(1))
            .unwrap();
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.chunks.len(), 2);
    }

    #[test]
    fn corrupt_chunk_line_is_skipped_and_counted() {
        let path = tmp("corrupt");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        w.append_chunk(&entry(0)).unwrap();
        w.append_chunk(&entry(1)).unwrap();
        drop(w);
        // Flip one byte inside chunk 0's payload: its CRC now fails.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = lines[1].replace("row 0", "row !"); // same length, new bytes
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.corrupt_lines, 1, "the tampered line must be dropped");
        assert!(!loaded.chunks.contains_key(&0), "chunk 0 must re-run");
        assert_eq!(loaded.chunks[&1], entry(1), "chunk 1 survives untouched");
    }

    #[test]
    fn truncated_tail_line_only_loses_its_own_chunk() {
        let path = tmp("truncated");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        w.append_chunk(&entry(0)).unwrap();
        w.append_chunk(&entry(1)).unwrap();
        drop(w);
        // Simulate a crash mid-append: cut the file mid-way through the
        // final line.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.corrupt_lines, 1);
        assert_eq!(loaded.chunks.len(), 1);
        assert!(loaded.chunks.contains_key(&0));
    }

    #[test]
    fn missing_or_headerless_files_mean_fresh_start() {
        let path = tmp("fresh");
        assert!(load(&path).unwrap().is_none(), "missing file");
        std::fs::write(&path, "garbage with no checksum\n").unwrap();
        assert!(load(&path).unwrap().is_none(), "corrupt header");
    }

    #[test]
    fn chunk_lines_with_wrong_geometry_are_rejected() {
        let path = tmp("geometry");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        // A forged line whose CRC is valid but whose range disagrees
        // with the header's chunk size.
        let bad = ChunkEntry {
            chunk: 0,
            lo: 0,
            hi: 3,
            failed: 0,
            rows: vec!["a".into(); 3],
        };
        w.append_raw(&chunk_line(&bad)).unwrap();
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.corrupt_lines, 1);
        assert!(loaded.chunks.is_empty());
    }
}
