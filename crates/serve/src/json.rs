//! A minimal flat-JSON codec for the wire protocol and checkpoint files.
//!
//! Protocol frames and checkpoint entries are single-line JSON objects
//! whose values are strings, numbers, booleans, `null` or arrays of
//! strings — nothing nests deeper, by design, so the codec stays a few
//! hundred lines and the build needs no external crates. The parser
//! rejects nested objects and non-string array elements outright; the
//! error messages name the offending byte offset so a malformed frame
//! can be reported precisely.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A JSON number (always carried as `f64`; the protocol only uses
    /// integers small enough to round-trip exactly).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array whose elements are all strings.
    StrList(Vec<String>),
}

/// A parsed flat JSON object with typed field accessors.
///
/// Accessors return `Err` with a message naming the field and the
/// expected type, so protocol handlers can forward them verbatim.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Object {
    fields: BTreeMap<String, Value>,
}

impl Object {
    /// The raw value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.get(key)
    }

    /// A required string field.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.fields.get(key) {
            Some(Value::Str(s)) => Ok(s),
            Some(_) => Err(format!("field `{key}` must be a string")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// An optional string field (`None` when absent or `null`).
    pub fn opt_str_field(&self, key: &str) -> Result<Option<&str>, String> {
        match self.fields.get(key) {
            Some(Value::Str(s)) => Ok(Some(s)),
            Some(Value::Null) | None => Ok(None),
            Some(_) => Err(format!("field `{key}` must be a string")),
        }
    }

    /// A required non-negative integer field.
    pub fn u64_field(&self, key: &str) -> Result<u64, String> {
        match self.fields.get(key) {
            Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Ok(*n as u64)
            }
            Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// An optional non-negative integer field.
    pub fn opt_u64_field(&self, key: &str) -> Result<Option<u64>, String> {
        match self.fields.get(key) {
            Some(Value::Null) | None => Ok(None),
            Some(_) => self.u64_field(key).map(Some),
        }
    }

    /// An optional boolean field, defaulting to `false` when absent.
    pub fn bool_field_or_false(&self, key: &str) -> Result<bool, String> {
        match self.fields.get(key) {
            Some(Value::Bool(b)) => Ok(*b),
            Some(Value::Null) | None => Ok(false),
            Some(_) => Err(format!("field `{key}` must be a boolean")),
        }
    }

    /// A required array-of-strings field.
    pub fn str_list_field(&self, key: &str) -> Result<&[String], String> {
        match self.fields.get(key) {
            Some(Value::StrList(v)) => Ok(v),
            Some(_) => Err(format!("field `{key}` must be an array of strings")),
            None => Err(format!("missing field `{key}`")),
        }
    }
}

/// Parse a single flat JSON object from `input`.
///
/// # Errors
///
/// Returns a human-readable message (with a byte offset) when the input
/// is not a flat JSON object — nested objects, non-string array
/// elements, trailing garbage, bad escapes and truncated input are all
/// rejected.
pub fn parse_object(input: &str) -> Result<Object, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    expect(bytes, &mut pos, b'{')?;
    let mut fields = BTreeMap::new();
    skip_ws(bytes, &mut pos);
    if peek(bytes, pos) == Some(b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(bytes, &mut pos);
            let key = parse_string(input, bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            expect(bytes, &mut pos, b':')?;
            skip_ws(bytes, &mut pos);
            let value = parse_value(input, bytes, &mut pos)?;
            fields.insert(key, value);
            skip_ws(bytes, &mut pos);
            match next(bytes, &mut pos) {
                Some(b',') => continue,
                Some(b'}') => break,
                Some(c) => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        pos - 1,
                        c as char
                    ))
                }
                None => return Err("unexpected end of input inside object".into()),
            }
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(Object { fields })
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match peek(bytes, *pos) {
        Some(b'"') => Ok(Value::Str(parse_string(input, bytes, pos)?)),
        Some(b't') => {
            expect_word(bytes, pos, b"true")?;
            Ok(Value::Bool(true))
        }
        Some(b'f') => {
            expect_word(bytes, pos, b"false")?;
            Ok(Value::Bool(false))
        }
        Some(b'n') => {
            expect_word(bytes, pos, b"null")?;
            Ok(Value::Null)
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if peek(bytes, *pos) == Some(b']') {
                *pos += 1;
                return Ok(Value::StrList(items));
            }
            loop {
                skip_ws(bytes, pos);
                if peek(bytes, *pos) != Some(b'"') {
                    return Err(format!("arrays may only hold strings (byte {})", *pos));
                }
                items.push(parse_string(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match next(bytes, pos) {
                    Some(b',') => continue,
                    Some(b']') => break,
                    Some(c) => {
                        return Err(format!(
                            "expected `,` or `]` at byte {}, found `{}`",
                            *pos - 1,
                            c as char
                        ))
                    }
                    None => return Err("unexpected end of input inside array".into()),
                }
            }
            Ok(Value::StrList(items))
        }
        Some(b'{') => Err(format!(
            "nested objects are not allowed in protocol frames (byte {})",
            *pos
        )),
        Some(c) if c == b'-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while let Some(c) = peek(bytes, *pos) {
                if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            input[start..*pos]
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!(
            "unexpected `{}` at byte {} (expected a value)",
            c as char, *pos
        )),
        None => Err("unexpected end of input (expected a value)".into()),
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if next(bytes, pos) != Some(b'"') {
        return Err(format!("expected `\"` at byte {}", pos.saturating_sub(1)));
    }
    let mut out = String::new();
    loop {
        let start = *pos;
        // Fast path: copy runs of plain bytes in one slice.
        while let Some(c) = peek(bytes, *pos) {
            if c == b'"' || c == b'\\' || c < 0x20 {
                break;
            }
            *pos += 1;
        }
        // `start..*pos` falls on char boundaries: the loop above only
        // stops on ASCII bytes, and continuation bytes are all ≥ 0x80.
        out.push_str(&input[start..*pos]);
        match next(bytes, pos) {
            Some(b'"') => return Ok(out),
            Some(b'\\') => match next(bytes, pos) {
                Some(b'"') => out.push('"'),
                Some(b'\\') => out.push('\\'),
                Some(b'/') => out.push('/'),
                Some(b'n') => out.push('\n'),
                Some(b'r') => out.push('\r'),
                Some(b't') => out.push('\t'),
                Some(b'b') => out.push('\u{0008}'),
                Some(b'f') => out.push('\u{000C}'),
                Some(b'u') => {
                    let hi = parse_hex4(input, bytes, pos)?;
                    let cp = if (0xD800..0xDC00).contains(&hi) {
                        // High surrogate: a `\uXXXX` low surrogate must follow.
                        if next(bytes, pos) != Some(b'\\') || next(bytes, pos) != Some(b'u') {
                            return Err("lone high surrogate in string escape".into());
                        }
                        let lo = parse_hex4(input, bytes, pos)?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err("invalid low surrogate in string escape".into());
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else if (0xDC00..0xE000).contains(&hi) {
                        return Err("lone low surrogate in string escape".into());
                    } else {
                        hi
                    };
                    out.push(
                        char::from_u32(cp).ok_or_else(|| "invalid unicode escape".to_string())?,
                    );
                }
                Some(c) => return Err(format!("bad escape `\\{}`", c as char)),
                None => return Err("unexpected end of input inside string".into()),
            },
            Some(c) => {
                return Err(format!(
                    "raw control byte 0x{c:02x} inside string at byte {}",
                    *pos - 1
                ))
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_hex4(input: &str, bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let hex = &input[*pos..*pos + 4];
    *pos += 4;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(peek(bytes, *pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *pos += 1;
    }
}

fn peek(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes.get(pos).copied()
}

fn next(bytes: &[u8], pos: &mut usize) -> Option<u8> {
    let c = bytes.get(*pos).copied();
    if c.is_some() {
        *pos += 1;
    }
    c
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    match next(bytes, pos) {
        Some(c) if c == want => Ok(()),
        Some(c) => Err(format!(
            "expected `{}` at byte {}, found `{}`",
            want as char,
            *pos - 1,
            c as char
        )),
        None => Err(format!("expected `{}`, found end of input", want as char)),
    }
}

fn expect_word(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!(
            "bad literal at byte {} (expected `{}`)",
            *pos,
            std::str::from_utf8(word).unwrap()
        ))
    }
}

/// Escape `s` for embedding in a JSON string literal (quotes not
/// included). Control characters become `\uXXXX`; everything else
/// passes through, so multi-line scenario text survives a round trip
/// on one wire line.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental builder for one-line flat JSON objects.
///
/// Fields are emitted in insertion order; `finish` closes the object.
#[derive(Debug)]
pub struct ObjectBuilder {
    buf: String,
    first: bool,
}

impl ObjectBuilder {
    /// Start an object with a `"type"` tag — every protocol frame leads
    /// with one.
    pub fn frame(frame_type: &str) -> Self {
        let mut b = Self {
            buf: String::from("{"),
            first: true,
        };
        b.push_str("type", frame_type);
        b
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Append a string field.
    pub fn push_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Append an integer field.
    pub fn push_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Append a float field (used for rates; formatted with `{}`).
    pub fn push_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Append a boolean field.
    pub fn push_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Append an array-of-strings field.
    pub fn push_str_list(&mut self, key: &str, values: &[String]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "\"{}\"", escape(v));
        }
        self.buf.push(']');
        self
    }

    /// Close the object and return the single-line JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let mut b = ObjectBuilder::frame("probe");
        b.push_str("name", "multi\nline \"quoted\" \\ text")
            .push_u64("cells", 42)
            .push_f64("rate", 0.5)
            .push_bool("resume", true)
            .push_str_list("rows", &["a,b".into(), "c\td".into()]);
        let line = b.finish();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj.str_field("type").unwrap(), "probe");
        assert_eq!(
            obj.str_field("name").unwrap(),
            "multi\nline \"quoted\" \\ text"
        );
        assert_eq!(obj.u64_field("cells").unwrap(), 42);
        assert_eq!(obj.get("rate"), Some(&Value::Num(0.5)));
        assert!(obj.bool_field_or_false("resume").unwrap());
        assert_eq!(
            obj.str_list_field("rows").unwrap(),
            ["a,b".to_string(), "c\td".to_string()]
        );
    }

    #[test]
    fn rejects_malformed_input_with_positions() {
        for (input, needle) in [
            ("", "expected `{`"),
            ("{", "expected `\"`"),
            ("{\"a\":1,}", "expected `\"`"),
            ("{\"a\":{}}", "nested objects"),
            ("{\"a\":[1]}", "arrays may only hold strings"),
            ("{\"a\":tru}", "bad literal"),
            ("{\"a\":\"x}", "unterminated string"),
            ("{\"a\":\"\\q\"}", "bad escape"),
            ("{\"a\":1} extra", "trailing garbage"),
            ("not json at all", "expected `{`"),
        ] {
            let err = parse_object(input).unwrap_err();
            assert!(
                err.contains(needle),
                "input {input:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn surrogate_pairs_and_unicode_escapes() {
        let obj = parse_object(r#"{"s":"\u0041\ud83d\ude00\u00e9"}"#).unwrap();
        assert_eq!(obj.str_field("s").unwrap(), "A\u{1F600}é");
        assert!(parse_object(r#"{"s":"\ud83d"}"#)
            .unwrap_err()
            .contains("surrogate"));
    }

    #[test]
    fn optional_fields_treat_null_as_absent() {
        let obj = parse_object(r#"{"type":"submit","id":null,"threads":null}"#).unwrap();
        assert_eq!(obj.opt_str_field("id").unwrap(), None);
        assert_eq!(obj.opt_u64_field("threads").unwrap(), None);
        assert_eq!(obj.opt_str_field("missing").unwrap(), None);
        assert!(obj.u64_field("threads").is_err());
    }
}
