//! The client side of the campaign protocol: `acsched submit` and
//! `acsched stats` are thin wrappers over these functions, and tests
//! drive them against an in-process [`serve_on`](crate::serve_on).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use acs_runtime::CSV_HEADER;

use crate::protocol::{
    hello_frame, parse_server_frame, stats_frame, submit_frame, SubmitRequest, PROTO_VERSION,
};

/// Options for [`submit`].
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Full scenario text to submit.
    pub scenario: String,
    /// Campaign id (defaults to the scenario fingerprint server-side).
    pub id: Option<String>,
    /// Replay finished chunks from the server's checkpoint.
    pub resume: bool,
    /// Worker threads on the server for this campaign.
    pub threads: Option<usize>,
    /// Cells per chunk.
    pub chunk: Option<usize>,
    /// Suppress per-chunk progress lines on stderr.
    pub quiet: bool,
}

/// What a completed submission streamed back.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The campaign id the server assigned (or echoed).
    pub id: String,
    /// Grid cells in the campaign.
    pub cells: usize,
    /// Cells whose runs failed (they still have CSV rows).
    pub failed: usize,
    /// Chunks executed fresh on the server.
    pub chunks_run: usize,
    /// Chunks replayed from the checkpoint instead of re-running.
    pub chunks_replayed: usize,
    /// Chunks the server reported as already finished at acceptance.
    pub resumed_chunks: usize,
    /// Checkpoint lines the server dropped as corrupt at acceptance.
    pub corrupt_lines: usize,
    /// The full CSV document: [`CSV_HEADER`] plus one row per cell in
    /// grid order — byte-identical to `acsched run` output for
    /// scenarios without a shared-state `reopt` policy.
    pub csv: String,
}

/// Submit a scenario and stream the campaign to completion.
///
/// # Errors
///
/// Connection errors, protocol violations and server `error` frames
/// are all reported as strings (server messages pass through
/// verbatim).
pub fn submit(opts: &SubmitOptions) -> Result<SubmitOutcome, String> {
    let stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = BufWriter::new(stream);

    send_line(&mut writer, &hello_frame())?;
    let hello = read_frame(&mut reader)?;
    if hello.frame_type != "hello" {
        return Err(format!("expected hello reply, got `{}`", hello.frame_type));
    }
    if hello.body.u64_field("proto")? != PROTO_VERSION {
        return Err("server speaks a different protocol version".into());
    }

    send_line(
        &mut writer,
        &submit_frame(&SubmitRequest {
            scenario: opts.scenario.clone(),
            id: opts.id.clone(),
            resume: opts.resume,
            threads: opts.threads,
            chunk: opts.chunk,
        }),
    )?;

    let mut outcome = SubmitOutcome {
        id: String::new(),
        cells: 0,
        failed: 0,
        chunks_run: 0,
        chunks_replayed: 0,
        resumed_chunks: 0,
        corrupt_lines: 0,
        csv: format!("{CSV_HEADER}\n"),
    };
    let mut next_index = 0usize;
    loop {
        let frame = read_frame(&mut reader)?;
        match frame.frame_type.as_str() {
            "accepted" => {
                outcome.id = frame.body.str_field("id")?.to_string();
                outcome.cells = frame.body.u64_field("cells")? as usize;
                outcome.resumed_chunks = frame.body.u64_field("resumed_chunks")? as usize;
                outcome.corrupt_lines = frame.body.u64_field("corrupt_lines")? as usize;
            }
            "record" => {
                let index = frame.body.u64_field("index")? as usize;
                if index != next_index {
                    return Err(format!(
                        "record index {index} out of order (expected {next_index})"
                    ));
                }
                next_index += 1;
                outcome.csv.push_str(frame.body.str_field("csv")?);
                outcome.csv.push('\n');
            }
            "progress" => {
                if !opts.quiet {
                    eprintln!(
                        "chunk {}/{} done ({}/{} cells{})",
                        frame.body.u64_field("chunk")? + 1,
                        frame.body.u64_field("chunks")?,
                        frame.body.u64_field("cells_done")?,
                        frame.body.u64_field("cells")?,
                        if frame.body.bool_field_or_false("replayed")? {
                            ", replayed"
                        } else {
                            ""
                        },
                    );
                }
            }
            "done" => {
                outcome.failed = frame.body.u64_field("failed")? as usize;
                outcome.chunks_run = frame.body.u64_field("chunks_run")? as usize;
                outcome.chunks_replayed = frame.body.u64_field("chunks_replayed")? as usize;
                if next_index != outcome.cells {
                    return Err(format!(
                        "server finished after {next_index} of {} records",
                        outcome.cells
                    ));
                }
                return Ok(outcome);
            }
            "error" => return Err(frame.body.str_field("message")?.to_string()),
            other => return Err(format!("unexpected frame `{other}` mid-campaign")),
        }
    }
}

/// Fetch the server's `stats` frame as its raw one-line JSON text.
///
/// # Errors
///
/// Connection and protocol errors as strings.
pub fn stats(addr: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = BufWriter::new(stream);
    send_line(&mut writer, &hello_frame())?;
    let hello = read_frame(&mut reader)?;
    if hello.frame_type != "hello" {
        return Err(format!("expected hello reply, got `{}`", hello.frame_type));
    }
    send_line(&mut writer, &stats_frame())?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    let line = line.trim_end_matches('\n').to_string();
    // Validate before handing it to scripts.
    let frame = parse_server_frame(&line)?;
    if frame.frame_type == "error" {
        return Err(frame.body.str_field("message")?.to_string());
    }
    if frame.frame_type != "stats" {
        return Err(format!("expected stats reply, got `{}`", frame.frame_type));
    }
    Ok(line)
}

fn send_line(writer: &mut BufWriter<TcpStream>, frame: &str) -> Result<(), String> {
    writer
        .write_all(frame.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send: {e}"))
}

fn read_frame(reader: &mut BufReader<TcpStream>) -> Result<crate::protocol::ServerFrame, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    parse_server_frame(line.trim_end_matches('\n'))
}
