//! # acs-serve
//!
//! A campaign server for the `acsched` workspace: `acsched serve`
//! keeps one long-lived process whose sharded
//! [`SolverCache`](acs_sim::SolverCache) and phase-1 plan cache stay
//! warm across submissions, and `acsched submit` streams scenarios to
//! it over a line-oriented TCP protocol (one flat JSON object per
//! line — built on `std::net`, no external crates).
//!
//! The pieces, bottom-up:
//!
//! - [`json`] — the flat single-line JSON codec shared by the wire
//!   protocol and the checkpoint files.
//! - [`protocol`] — frame grammar and parse/build helpers
//!   (`hello`/`submit`/`record`/`progress`/`done`/`stats`/`error`).
//! - [`checkpoint`] — append-only, CRC-32-guarded, fsync'd per-campaign
//!   chunk logs; a corrupt or truncated line costs exactly one chunk
//!   on resume.
//! - [`state`] — process-wide [`ServerState`]: shared solver cache,
//!   fingerprint-keyed plan cache, admission control, counters.
//! - [`server`] — the accept loop and the chunked, checkpointed,
//!   backpressured campaign executor.
//! - [`client`] — [`submit`] / [`stats`]
//!   used by the CLI and tests.
//!
//! Served `record` frames carry the exact `CsvSink` rows in global
//! grid order, so `CSV_HEADER` + rows is byte-identical to
//! `acsched run` output for the same scenario (for scenarios without a
//! `reopt` policy — the shared solver cache changes only reopt's
//! solver-call *counters*, never results; see `docs/SERVER.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::{stats, submit, SubmitOptions, SubmitOutcome};
pub use protocol::PROTO_VERSION;
pub use server::{handle_connection, serve, serve_on};
pub use state::{scenario_fingerprint, ServerConfig, ServerState};
