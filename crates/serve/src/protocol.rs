//! The line-oriented campaign protocol: one flat JSON object per line,
//! each carrying a `"type"` tag.
//!
//! ## Grammar (protocol version 1)
//!
//! Client → server, in order:
//!
//! ```text
//! {"type":"hello","proto":1}
//! {"type":"submit","scenario":"<scenario text>","id":"...","resume":false,
//!  "threads":N,"chunk":N}            // id/resume/threads/chunk optional
//! {"type":"stats"}
//! ```
//!
//! Server → client:
//!
//! ```text
//! {"type":"hello","proto":1,"server":"..."}
//! {"type":"accepted","id":"...","cells":N,"runs":N,"seeds":N,
//!  "chunks":N,"chunk_size":N,"resumed_chunks":N,"corrupt_lines":N}
//! {"type":"record","index":I,"csv":"<one CsvSink row>"}
//! {"type":"progress","chunk":K,"chunks":N,"cells_done":D,"cells":N,
//!  "replayed":B}
//! {"type":"done","id":"...","cells":N,"failed":F,"chunks_run":R,
//!  "chunks_replayed":P}
//! {"type":"stats", ...counters...}
//! {"type":"error","line":L,"message":"..."}
//! ```
//!
//! `record` frames arrive in increasing global cell-index order, and
//! their `csv` payloads are exactly the rows `CsvSink` would write, so
//! concatenating `CSV_HEADER` + rows reproduces `acsched run` output
//! byte for byte (for scenarios without a shared-state `reopt` policy;
//! see `docs/SERVER.md`).
//!
//! An `error` frame does **not** close the connection: `line` is the
//! 1-based input line number on this connection, and the client may
//! keep sending frames afterwards.

use crate::json::{Object, ObjectBuilder};

/// Protocol version spoken by this build. Bumped on any wire-visible
/// change; the server rejects `hello` frames with a different version.
pub const PROTO_VERSION: u64 = 1;

/// Server identification string sent in the `hello` reply.
pub const SERVER_IDENT: &str = concat!("acsched-serve/", env!("CARGO_PKG_VERSION"));

/// A parsed client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Protocol handshake; must be the first frame on a connection.
    Hello {
        /// Protocol version the client speaks.
        proto: u64,
    },
    /// Submit a campaign for execution.
    Submit(SubmitRequest),
    /// Ask for the server's cache/campaign counters.
    Stats,
}

/// The payload of a `submit` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Full scenario text (the same format `acsched run` reads).
    pub scenario: String,
    /// Campaign id; defaults to the scenario fingerprint when absent.
    pub id: Option<String>,
    /// Replay finished chunks from this campaign's checkpoint instead
    /// of re-running them.
    pub resume: bool,
    /// Worker threads for this campaign (defaults to the server's).
    pub threads: Option<usize>,
    /// Cells per chunk (defaults to the server's).
    pub chunk: Option<usize>,
}

/// Parse one input line into a [`Request`].
///
/// # Errors
///
/// Returns the message to embed in an `error` frame when the line is
/// not valid flat JSON, has no/unknown `type`, or is missing fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let obj = crate::json::parse_object(line)?;
    match obj.str_field("type")? {
        "hello" => Ok(Request::Hello {
            proto: obj.u64_field("proto")?,
        }),
        "submit" => Ok(Request::Submit(SubmitRequest {
            scenario: obj.str_field("scenario")?.to_string(),
            id: obj.opt_str_field("id")?.map(str::to_string),
            resume: obj.bool_field_or_false("resume")?,
            threads: obj.opt_u64_field("threads")?.map(|n| n as usize),
            chunk: obj.opt_u64_field("chunk")?.map(|n| n as usize),
        })),
        "stats" => Ok(Request::Stats),
        other => Err(format!("unknown frame type `{other}`")),
    }
}

/// The server's `hello` reply.
pub fn hello_reply() -> String {
    let mut b = ObjectBuilder::frame("hello");
    b.push_u64("proto", PROTO_VERSION)
        .push_str("server", SERVER_IDENT);
    b.finish()
}

/// The client's `hello` frame.
pub fn hello_frame() -> String {
    let mut b = ObjectBuilder::frame("hello");
    b.push_u64("proto", PROTO_VERSION);
    b.finish()
}

/// A client `submit` frame.
pub fn submit_frame(req: &SubmitRequest) -> String {
    let mut b = ObjectBuilder::frame("submit");
    b.push_str("scenario", &req.scenario);
    if let Some(id) = &req.id {
        b.push_str("id", id);
    }
    if req.resume {
        b.push_bool("resume", true);
    }
    if let Some(t) = req.threads {
        b.push_u64("threads", t as u64);
    }
    if let Some(c) = req.chunk {
        b.push_u64("chunk", c as u64);
    }
    b.finish()
}

/// A client `stats` frame.
pub fn stats_frame() -> String {
    ObjectBuilder::frame("stats").finish()
}

/// An `error` frame carrying the 1-based connection line number that
/// triggered it.
pub fn error_frame(line: u64, message: &str) -> String {
    let mut b = ObjectBuilder::frame("error");
    b.push_u64("line", line).push_str("message", message);
    b.finish()
}

/// A `record` frame: one finished grid cell, as its exact CSV row.
pub fn record_frame(index: usize, csv: &str) -> String {
    let mut b = ObjectBuilder::frame("record");
    b.push_u64("index", index as u64).push_str("csv", csv);
    b.finish()
}

/// A per-chunk `progress` frame.
pub fn progress_frame(
    chunk: usize,
    chunks: usize,
    cells_done: usize,
    cells: usize,
    replayed: bool,
) -> String {
    let mut b = ObjectBuilder::frame("progress");
    b.push_u64("chunk", chunk as u64)
        .push_u64("chunks", chunks as u64)
        .push_u64("cells_done", cells_done as u64)
        .push_u64("cells", cells as u64)
        .push_bool("replayed", replayed);
    b.finish()
}

/// Fields common to server reply frames, parsed loosely by the client.
#[derive(Debug)]
pub struct ServerFrame {
    /// The frame's `"type"` tag.
    pub frame_type: String,
    /// The full parsed object for field access.
    pub body: Object,
}

/// Parse one server reply line.
///
/// # Errors
///
/// Returns a message when the line is not a flat JSON object with a
/// string `type` field.
pub fn parse_server_frame(line: &str) -> Result<ServerFrame, String> {
    let body = crate::json::parse_object(line)?;
    let frame_type = body.str_field("type")?.to_string();
    Ok(ServerFrame { frame_type, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_frame_round_trips() {
        let req = SubmitRequest {
            scenario: "acsched-scenario v1\n# line two\n".into(),
            id: Some("sweep".into()),
            resume: true,
            threads: Some(4),
            chunk: Some(2),
        };
        let line = submit_frame(&req);
        assert!(!line.contains('\n'), "frames must be single lines: {line}");
        match parse_request(&line).unwrap() {
            Request::Submit(back) => assert_eq!(back, req),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn hello_and_stats_round_trip() {
        assert_eq!(
            parse_request(&hello_frame()).unwrap(),
            Request::Hello {
                proto: PROTO_VERSION
            }
        );
        assert_eq!(parse_request(&stats_frame()).unwrap(), Request::Stats);
    }

    #[test]
    fn unknown_and_malformed_frames_name_the_problem() {
        assert!(parse_request("{\"type\":\"launch\"}")
            .unwrap_err()
            .contains("unknown frame type `launch`"));
        assert!(parse_request("{\"proto\":1}").unwrap_err().contains("type"));
        assert!(parse_request("{\"type\":\"submit\"}")
            .unwrap_err()
            .contains("missing field `scenario`"));
    }
}
