//! Process-wide server state: the shared solver cache, the phase-1
//! plan cache keyed by scenario fingerprint, admission control and the
//! counters behind the `stats` frame.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use acs_runtime::pool::default_threads;
use acs_runtime::CampaignPlans;
use acs_scenario::Scenario;
use acs_sim::SolverCache;

use crate::json::ObjectBuilder;

/// Tunables for [`serve`](crate::serve) — every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks a free port, and the
    /// server prints the bound address on startup).
    pub addr: String,
    /// Directory for per-campaign checkpoint files.
    pub ckpt_dir: PathBuf,
    /// Admission cap: campaigns executing at once; further `submit`
    /// frames get an `error` frame and may retry.
    pub max_campaigns: usize,
    /// Backpressure bound: chunks in flight ahead of the slowest
    /// consumer (the socket writer + checkpoint fsync), per campaign.
    pub max_inflight_chunks: usize,
    /// Default cells per chunk when `submit` does not override it.
    pub default_chunk_size: usize,
    /// Worker threads per campaign when `submit` does not override it.
    pub threads: usize,
    /// Total capacity of the shared solver cache (split across shards).
    pub cache_capacity: usize,
    /// Shards in the shared solver cache.
    pub cache_shards: usize,
    /// Phase-1 plan cache capacity (distinct scenario fingerprints).
    pub plan_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            ckpt_dir: PathBuf::from(".acsched-ckpt"),
            max_campaigns: 4,
            max_inflight_chunks: 4,
            default_chunk_size: 4,
            threads: default_threads(),
            cache_capacity: 16384,
            cache_shards: 8,
            plan_capacity: 32,
        }
    }
}

/// FNV-1a 64-bit over the scenario's canonical text with the `threads`
/// directive cleared — stable across processes and restarts (unlike
/// `DefaultHasher`'s randomized state), identical for any two scenario
/// files that parse to the same experiment, and independent of the
/// worker-thread count, which never changes results.
///
/// `taskset … trace` declarations fold the trace file's **contents**
/// into the hash (in declaration order), not just its path: two
/// submissions only share plans and checkpoints when the recorded
/// streams match. An unreadable trace file is rejected here — before
/// admission — so a bad path costs an `error` frame, never a slot.
pub fn scenario_fingerprint(scenario: &Scenario) -> Result<u64, String> {
    let mut canonical = scenario.clone();
    canonical.threads = None;
    let text = canonical
        .to_text()
        .map_err(|e| format!("scenario cannot be canonicalized: {e}"))?;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |bytes: &[u8]| {
        for b in bytes {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fold(text.as_bytes());
    for (name, path) in scenario.trace_paths() {
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("taskset `{name}`: cannot read trace `{path}`: {e}"))?;
        fold(&bytes);
    }
    Ok(hash)
}

/// LRU cache of phase-1 campaign plans keyed by scenario fingerprint.
#[derive(Debug, Default)]
struct PlanCache {
    plans: HashMap<u64, Arc<CampaignPlans>>,
    order: VecDeque<u64>,
}

/// Cumulative server counters, snapshot by the `stats` frame.
#[derive(Debug, Default)]
pub struct Counters {
    /// `submit` frames that passed validation and admission.
    pub campaigns_accepted: AtomicU64,
    /// Campaigns that streamed `done`.
    pub campaigns_completed: AtomicU64,
    /// Campaigns that aborted with an `error` frame after acceptance.
    pub campaigns_failed: AtomicU64,
    /// Chunks executed by the worker pool.
    pub chunks_run: AtomicU64,
    /// Chunks replayed from checkpoints instead of re-running.
    pub chunks_replayed: AtomicU64,
    /// `record` frames streamed to clients.
    pub records_streamed: AtomicU64,
    /// Plan-cache lookups.
    pub plan_lookups: AtomicU64,
    /// Plan-cache hits.
    pub plan_hits: AtomicU64,
}

/// Shared state behind one `acsched serve` process.
#[derive(Debug)]
pub struct ServerState {
    /// The configuration the server was started with.
    pub cfg: ServerConfig,
    /// The campaign-wide sharded solver cache, handed to every
    /// campaign built by this server.
    pub solver_cache: Arc<SolverCache>,
    plans: Mutex<PlanCache>,
    /// Cumulative counters.
    pub counters: Counters,
    active: AtomicUsize,
    active_ids: Mutex<HashSet<String>>,
}

impl ServerState {
    /// Fresh state for `cfg`.
    pub fn new(cfg: ServerConfig) -> Self {
        let solver_cache = Arc::new(SolverCache::with_shards(
            cfg.cache_capacity.max(1),
            cfg.cache_shards.max(1),
        ));
        Self {
            cfg,
            solver_cache,
            plans: Mutex::new(PlanCache::default()),
            counters: Counters::default(),
            active: AtomicUsize::new(0),
            active_ids: Mutex::new(HashSet::new()),
        }
    }

    /// Look up a cached phase-1 plan by fingerprint, counting the
    /// lookup. On miss, call `build` and cache the result.
    pub fn plans_for(
        &self,
        fingerprint: u64,
        build: impl FnOnce() -> CampaignPlans,
    ) -> Arc<CampaignPlans> {
        self.counters.plan_lookups.fetch_add(1, Ordering::Relaxed);
        {
            let mut cache = self.plans.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(plans) = cache.plans.get(&fingerprint) {
                self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                let plans = Arc::clone(plans);
                // Refresh recency.
                cache.order.retain(|k| *k != fingerprint);
                cache.order.push_back(fingerprint);
                return plans;
            }
        }
        // Build outside the lock: plan synthesis can take seconds and
        // must not serialize unrelated submissions.
        let built = Arc::new(build());
        let mut cache = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        let entry = cache
            .plans
            .entry(fingerprint)
            .or_insert_with(|| Arc::clone(&built))
            .clone();
        cache.order.retain(|k| *k != fingerprint);
        cache.order.push_back(fingerprint);
        while cache.plans.len() > self.cfg.plan_capacity.max(1) {
            if let Some(evict) = cache.order.pop_front() {
                cache.plans.remove(&evict);
            } else {
                break;
            }
        }
        entry
    }

    /// Try to admit one more campaign. Rejects with a retryable
    /// message when the server is at [`ServerConfig::max_campaigns`],
    /// and rejects a second concurrent run of the same campaign id,
    /// which would interleave appends in one checkpoint file.
    ///
    /// # Errors
    ///
    /// The message to embed in the `error` frame.
    pub fn try_admit(self: &Arc<Self>, id: &str) -> Result<AdmissionGuard, String> {
        let cap = self.cfg.max_campaigns.max(1);
        let mut current = self.active.load(Ordering::Relaxed);
        loop {
            if current >= cap {
                return Err(format!(
                    "server at capacity ({cap} campaigns running); retry later"
                ));
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        let mut ids = self.active_ids.lock().unwrap_or_else(|e| e.into_inner());
        if !ids.insert(id.to_string()) {
            drop(ids);
            self.active.fetch_sub(1, Ordering::AcqRel);
            return Err(format!("campaign `{id}` is already running"));
        }
        Ok(AdmissionGuard {
            state: Arc::clone(self),
            id: id.to_string(),
        })
    }

    /// Campaigns currently executing.
    pub fn active_campaigns(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// The `stats` reply frame for the current counters.
    pub fn stats_frame(&self) -> String {
        let solver = self.solver_cache.stats();
        let c = &self.counters;
        let plan_lookups = c.plan_lookups.load(Ordering::Relaxed);
        let plan_hits = c.plan_hits.load(Ordering::Relaxed);
        let mut b = ObjectBuilder::frame("stats");
        b.push_u64("solver_lookups", solver.lookups)
            .push_u64("solver_hits", solver.hits)
            .push_f64("solver_hit_rate", solver.hit_rate())
            .push_u64("solver_entries", solver.entries as u64)
            .push_u64("solver_shards", solver.shards as u64)
            .push_u64("plan_lookups", plan_lookups)
            .push_u64("plan_hits", plan_hits)
            .push_u64(
                "campaigns_accepted",
                c.campaigns_accepted.load(Ordering::Relaxed),
            )
            .push_u64(
                "campaigns_completed",
                c.campaigns_completed.load(Ordering::Relaxed),
            )
            .push_u64(
                "campaigns_failed",
                c.campaigns_failed.load(Ordering::Relaxed),
            )
            .push_u64("campaigns_active", self.active_campaigns() as u64)
            .push_u64("chunks_run", c.chunks_run.load(Ordering::Relaxed))
            .push_u64("chunks_replayed", c.chunks_replayed.load(Ordering::Relaxed))
            .push_u64(
                "records_streamed",
                c.records_streamed.load(Ordering::Relaxed),
            );
        b.finish()
    }

    /// The checkpoint path for a campaign id. Ids are sanitized to
    /// `[A-Za-z0-9._-]` (others become `_`) so a wire-supplied id can
    /// never escape the checkpoint directory.
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        let safe: String = id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let safe = safe.trim_matches('.');
        let safe = if safe.is_empty() { "campaign" } else { safe };
        self.cfg.ckpt_dir.join(format!("{safe}.ckpt"))
    }
}

/// Holds one admission slot; dropping it releases the slot and the
/// campaign id.
#[derive(Debug)]
pub struct AdmissionGuard {
    state: Arc<ServerState>,
    id: String,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut ids = self
            .state
            .active_ids
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        ids.remove(&self.id);
        drop(ids);
        self.state.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(max: usize) -> Arc<ServerState> {
        Arc::new(ServerState::new(ServerConfig {
            max_campaigns: max,
            ..ServerConfig::default()
        }))
    }

    const TINY: &str = "acsched-scenario v1\n\
                        taskset pair\n\
                        task a period=10 wcec=300 acec=120 bcec=30\n\
                        task b period=20 wcec=600 acec=200 bcec=60\n\
                        end\n\
                        processor p linear kappa=50 vmin=0.3 vmax=4\n\
                        schedules wcs\n\
                        policy greedy\n\
                        workload paper\n\
                        hyper_periods 2\n\
                        synthesis quick\n";

    #[test]
    fn fingerprint_ignores_threads_but_not_axes() {
        let base = &format!("{TINY}seeds 1 2\n");
        let a = Scenario::from_text(base).unwrap();
        let b = Scenario::from_text(&format!("{base}threads 3\n")).unwrap();
        let c = Scenario::from_text(&base.replace("seeds 1 2", "seeds 1 3")).unwrap();
        let fa = scenario_fingerprint(&a).unwrap();
        assert_eq!(
            fa,
            scenario_fingerprint(&b).unwrap(),
            "threads must not change the fingerprint"
        );
        assert_ne!(
            fa,
            scenario_fingerprint(&c).unwrap(),
            "seed axis must change it"
        );
    }

    #[test]
    fn admission_caps_and_releases() {
        let s = state(2);
        let g1 = s.try_admit("a").expect("slot 1");
        let _g2 = s.try_admit("b").expect("slot 2");
        assert!(s.try_admit("c").unwrap_err().contains("at capacity"));
        drop(g1);
        assert_eq!(s.active_campaigns(), 1);
        let _g3 = s.try_admit("c").expect("slot freed");
    }

    #[test]
    fn duplicate_active_ids_are_rejected() {
        let s = state(8);
        let _g = s.try_admit("same").expect("first");
        assert!(s.try_admit("same").unwrap_err().contains("already running"));
        assert_eq!(
            s.active_campaigns(),
            1,
            "rejected admit must release its slot"
        );
    }

    #[test]
    fn checkpoint_path_neuters_traversal() {
        let s = state(1);
        let p = s.checkpoint_path("../../etc/passwd");
        assert!(p.ends_with("_.._etc_passwd.ckpt"), "{p:?}");
        assert!(s.checkpoint_path("").ends_with("campaign.ckpt"));
    }

    #[test]
    fn plan_cache_counts_hits_and_evicts_lru() {
        let cfg = ServerConfig {
            plan_capacity: 2,
            ..ServerConfig::default()
        };
        let s = ServerState::new(cfg);
        let dummy = || {
            // Any scenario works; the cache never inspects the plans.
            let sc = Scenario::from_text(TINY).unwrap();
            sc.campaign_builder().unwrap().build().unwrap().plan()
        };
        let a = s.plans_for(1, dummy);
        let a2 = s.plans_for(1, || unreachable!("hit must not rebuild"));
        assert!(Arc::ptr_eq(&a, &a2));
        let _ = s.plans_for(2, dummy);
        let _ = s.plans_for(3, dummy); // evicts fingerprint 1
        let _ = s.plans_for(1, dummy); // rebuild after eviction
        assert_eq!(s.counters.plan_lookups.load(Ordering::Relaxed), 5);
        assert_eq!(s.counters.plan_hits.load(Ordering::Relaxed), 1);
    }
}
