//! The campaign server: a `TcpListener` accept loop, one thread per
//! connection, and the chunked, checkpointed campaign executor behind
//! the `submit` frame.
//!
//! ## Execution model
//!
//! A submitted scenario is validated with the `acs-scenario` parser,
//! then built into a `Campaign` that shares the server's process-wide
//! [`SolverCache`](acs_sim::SolverCache). Phase-1 plans come from the
//! fingerprint-keyed plan cache, so re-submitting a scenario skips
//! synthesis entirely. The cell grid is split into contiguous
//! fixed-size chunks; a bounded in-order worker pool
//! ([`parallel_for_in_order_bounded`]) runs each chunk through
//! `Campaign::run_range_with` (one thread per chunk — parallelism
//! comes from running chunks concurrently), while the consumer on the
//! connection thread streams `record` frames in global cell order,
//! appends the finished chunk to the campaign's checkpoint (fsync'd),
//! and emits a `progress` frame. The in-flight bound is the
//! backpressure knob: a slow client socket or a slow disk stalls the
//! workers instead of buffering the whole campaign in memory.
//!
//! Because per-run draw streams are keyed by `(seed, task-set, core)`
//! — not by thread or chunk placement — the concatenated `record` rows
//! are byte-identical to what `acsched run` writes for the same
//! scenario, at any chunk size, thread count or resume split.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use acs_runtime::pool::parallel_for_in_order_bounded;
use acs_runtime::sink::csv_row;
use acs_runtime::{CampaignMeta, CellRecord, ResultSink};
use acs_scenario::Scenario;

use crate::checkpoint::{self, CheckpointWriter, ChunkEntry, Header};
use crate::json::ObjectBuilder;
use crate::protocol::{
    error_frame, hello_reply, parse_request, progress_frame, record_frame, Request, SubmitRequest,
    PROTO_VERSION,
};
use crate::state::{scenario_fingerprint, ServerConfig, ServerState};

/// Bind `cfg.addr`, print `listening on <addr>` (the bound address, so
/// `:0` is usable by scripts), and serve forever.
///
/// # Errors
///
/// Returns the bind/accept error; per-connection errors only drop that
/// connection.
pub fn serve(cfg: ServerConfig) -> io::Result<()> {
    let listener = TcpListener::bind(&cfg.addr)?;
    println!("listening on {}", listener.local_addr()?);
    serve_on(listener, Arc::new(ServerState::new(cfg)))
}

/// Serve connections from an already-bound listener — the testable
/// core of [`serve`]: tests bind port 0 themselves, read the local
/// address, and run this on a background thread.
///
/// # Errors
///
/// Returns accept-loop errors; per-connection errors only drop that
/// connection.
pub fn serve_on(listener: TcpListener, state: Arc<ServerState>) -> io::Result<()> {
    loop {
        let (stream, _peer) = listener.accept()?;
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            // A dropped/errored connection is the client's problem;
            // the server state is consistent at every frame boundary.
            let _ = handle_connection(stream, state);
        });
    }
}

/// Drive one connection's request loop.
///
/// Malformed lines produce an `error` frame carrying the 1-based line
/// number and leave the connection open; only transport errors (or a
/// client hangup) end the loop.
///
/// # Errors
///
/// Returns the transport error that ended the connection.
pub fn handle_connection(stream: TcpStream, state: Arc<ServerState>) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line_no = 0u64;
    let mut greeted = false;
    for line in reader.lines() {
        let line = line?;
        line_no += 1;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(message) => send(&mut writer, &error_frame(line_no, &message))?,
            Ok(Request::Hello { proto }) => {
                if proto == PROTO_VERSION {
                    greeted = true;
                    send(&mut writer, &hello_reply())?;
                } else {
                    send(
                        &mut writer,
                        &error_frame(
                            line_no,
                            &format!(
                                "unsupported protocol version {proto} (server speaks {PROTO_VERSION})"
                            ),
                        ),
                    )?;
                }
            }
            Ok(_) if !greeted => send(
                &mut writer,
                &error_frame(line_no, "first frame must be `hello`"),
            )?,
            Ok(Request::Stats) => send(&mut writer, &state.stats_frame())?,
            Ok(Request::Submit(req)) => match run_submission(&mut writer, line_no, &req, &state) {
                Ok(()) => {}
                // Rejections before execution keep the connection open.
                Err(SubmitError::Rejected(message)) => {
                    send(&mut writer, &error_frame(line_no, &message))?;
                }
                // Mid-campaign failures already sent their error frame
                // (best-effort); transport errors end the connection.
                Err(SubmitError::Transport(e)) => return Err(e),
            },
        }
    }
    Ok(())
}

enum SubmitError {
    /// The submission never started executing; reported as an `error`
    /// frame on the still-usable connection.
    Rejected(String),
    /// The connection itself failed.
    Transport(io::Error),
}

impl From<io::Error> for SubmitError {
    fn from(e: io::Error) -> Self {
        SubmitError::Transport(e)
    }
}

/// Collects the records of one chunk in memory (chunks are small — a
/// handful of cells — so this is bounded by `chunk_size`).
#[derive(Default)]
struct ChunkSink {
    rows: Vec<String>,
    failed: usize,
}

impl ResultSink for ChunkSink {
    fn on_record(&mut self, record: &CellRecord) -> io::Result<()> {
        if record.cell.outcome.is_err() {
            self.failed += 1;
        }
        self.rows.push(csv_row(record));
        Ok(())
    }
}

fn send(writer: &mut BufWriter<TcpStream>, frame: &str) -> io::Result<()> {
    writer.write_all(frame.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn run_submission(
    writer: &mut BufWriter<TcpStream>,
    line_no: u64,
    req: &SubmitRequest,
    state: &Arc<ServerState>,
) -> Result<(), SubmitError> {
    // 1. Validate the scenario text. Parser messages carry their own
    //    `line N:` prefix — that is the line inside the scenario, while
    //    the frame's `line` field is the connection line number.
    let scenario = Scenario::from_text(&req.scenario)
        .map_err(|e| SubmitError::Rejected(format!("scenario: {e}")))?;
    let fingerprint = scenario_fingerprint(&scenario).map_err(SubmitError::Rejected)?;
    let id = req
        .id
        .clone()
        .unwrap_or_else(|| format!("{fingerprint:016x}"));

    // 2. Admission control: a slot and an exclusive hold on the id.
    let guard = state.try_admit(&id).map_err(SubmitError::Rejected)?;

    // 3. Build the campaign against the server's shared solver cache.
    let threads = req.threads.unwrap_or(state.cfg.threads).max(1);
    let campaign = scenario
        .campaign_builder_with_cache(Some(&state.solver_cache))
        .map_err(|e| SubmitError::Rejected(format!("scenario: {e}")))?
        .threads(threads)
        .build()
        .map_err(|e| SubmitError::Rejected(format!("campaign: {e}")))?;
    let cells = campaign.cell_count();
    let runs = campaign.run_count();
    let seeds = runs.checked_div(cells).unwrap_or(0);

    // 4. Resume state. The checkpoint's chunk size wins on resume so
    //    recorded ranges keep lining up with chunk boundaries.
    let ckpt_path = state.checkpoint_path(&id);
    let fingerprint_hex = format!("{fingerprint:016x}");
    let mut resumed = std::collections::HashMap::new();
    let mut corrupt_lines = 0usize;
    let mut chunk_size = req.chunk.unwrap_or(state.cfg.default_chunk_size).max(1);
    if req.resume {
        if let Some(loaded) = checkpoint::load(&ckpt_path).map_err(SubmitError::Transport)? {
            if loaded.header.fingerprint != fingerprint_hex
                || loaded.header.cells != cells
                || loaded.header.runs != runs
            {
                return Err(SubmitError::Rejected(format!(
                    "checkpoint for campaign `{id}` belongs to a different scenario \
                     (fingerprint {}, {} cells); submit without resume to overwrite",
                    loaded.header.fingerprint, loaded.header.cells
                )));
            }
            chunk_size = loaded.header.chunk_size;
            resumed = loaded.chunks;
            corrupt_lines = loaded.corrupt_lines;
        }
    }
    let n_chunks = cells.div_ceil(chunk_size.max(1)).max(1);

    // 5. Open the checkpoint: append on resume, truncate otherwise.
    let header = Header {
        campaign: id.clone(),
        fingerprint: fingerprint_hex,
        cells,
        runs,
        chunk_size,
    };
    let mut ckpt = if req.resume && !resumed.is_empty() {
        CheckpointWriter::open_append(&ckpt_path)
    } else {
        CheckpointWriter::create(&ckpt_path, &header)
    }
    .map_err(|e| SubmitError::Rejected(format!("checkpoint `{}`: {e}", ckpt_path.display())))?;

    // 6. Phase-1 plans, shared across submissions by fingerprint.
    state
        .counters
        .campaigns_accepted
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let plans = state.plans_for(fingerprint, || campaign.plan());

    let mut accepted = ObjectBuilder::frame("accepted");
    accepted
        .push_str("id", &id)
        .push_u64("cells", cells as u64)
        .push_u64("runs", runs as u64)
        .push_u64("seeds", seeds as u64)
        .push_u64("chunks", n_chunks as u64)
        .push_u64("chunk_size", chunk_size as u64)
        .push_u64("resumed_chunks", resumed.len() as u64)
        .push_u64("corrupt_lines", corrupt_lines as u64);
    send(writer, &accepted.finish())?;

    // 7. Execute. Workers produce chunks (or replay them); the consumer
    //    streams records in global order, checkpoints, and reports
    //    progress. `max_inflight_chunks` bounds how far workers run
    //    ahead of this connection's socket + disk.
    let resumed = &resumed;
    let campaign = &campaign;
    let plans_ref: &acs_runtime::CampaignPlans = &plans;
    let mut cells_done = 0usize;
    let mut failed_total = 0usize;
    let mut chunks_run = 0usize;
    let mut chunks_replayed = 0usize;
    let relaxed = std::sync::atomic::Ordering::Relaxed;

    let outcome: Result<(), SubmitError> = parallel_for_in_order_bounded(
        n_chunks,
        threads,
        state.cfg.max_inflight_chunks,
        |k| -> Result<(ChunkEntry, bool), String> {
            let lo = k * chunk_size;
            let hi = (lo + chunk_size).min(cells);
            if let Some(entry) = resumed.get(&k) {
                return Ok((entry.clone(), true));
            }
            let mut sink = ChunkSink::default();
            campaign
                .run_range_with(plans_ref, lo..hi, 1, &mut sink)
                .map_err(|e| format!("chunk {k} ({lo}..{hi}): {e}"))?;
            Ok((
                ChunkEntry {
                    chunk: k,
                    lo,
                    hi,
                    failed: sink.failed,
                    rows: sink.rows,
                },
                false,
            ))
        },
        |k, produced| -> Result<(), SubmitError> {
            let (entry, replayed) = produced.map_err(|message| {
                let _ = send(writer, &error_frame(line_no, &message));
                SubmitError::Transport(io::Error::other(message))
            })?;
            for (offset, row) in entry.rows.iter().enumerate() {
                send(writer, &record_frame(entry.lo + offset, row))?;
            }
            state
                .counters
                .records_streamed
                .fetch_add(entry.rows.len() as u64, relaxed);
            if replayed {
                chunks_replayed += 1;
                state.counters.chunks_replayed.fetch_add(1, relaxed);
            } else {
                chunks_run += 1;
                state.counters.chunks_run.fetch_add(1, relaxed);
                ckpt.append_chunk(&entry).map_err(|e| {
                    let message = format!("checkpoint append failed: {e}");
                    let _ = send(writer, &error_frame(line_no, &message));
                    SubmitError::Transport(io::Error::other(message))
                })?;
            }
            cells_done += entry.hi - entry.lo;
            failed_total += entry.failed;
            send(
                writer,
                &progress_frame(k, n_chunks, cells_done, cells, replayed),
            )?;
            Ok(())
        },
    );

    match outcome {
        Ok(()) => {
            state.counters.campaigns_completed.fetch_add(1, relaxed);
            // Free the admission slot before announcing completion, so
            // a client that retries the moment it sees `done` is never
            // spuriously rejected.
            drop(guard);
            let mut done = ObjectBuilder::frame("done");
            done.push_str("id", &id)
                .push_u64("cells", cells as u64)
                .push_u64("failed", failed_total as u64)
                .push_u64("chunks_run", chunks_run as u64)
                .push_u64("chunks_replayed", chunks_replayed as u64);
            send(writer, &done.finish())?;
            Ok(())
        }
        Err(e) => {
            state.counters.campaigns_failed.fetch_add(1, relaxed);
            Err(e)
        }
    }
}

/// `CampaignMeta` equivalent for a served campaign — exposed so tests
/// can reconstruct the meta a local sink would have seen.
pub fn served_meta(cells: usize, runs: usize) -> CampaignMeta {
    CampaignMeta {
        cells,
        runs,
        seeds: runs.checked_div(cells).unwrap_or(0),
    }
}
