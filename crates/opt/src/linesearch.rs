//! Strong-Wolfe line search (Nocedal & Wright, Algorithms 3.5/3.6).

/// Parameters of the strong-Wolfe search.
#[derive(Debug, Clone, Copy)]
pub struct LineSearchParams {
    /// Sufficient-decrease (Armijo) constant, `0 < c1 < c2`.
    pub c1: f64,
    /// Curvature constant, `c1 < c2 < 1`.
    pub c2: f64,
    /// First trial step.
    pub alpha_init: f64,
    /// Largest step ever tried.
    pub alpha_max: f64,
    /// Evaluation budget for bracketing plus zooming.
    pub max_evals: usize,
}

impl Default for LineSearchParams {
    fn default() -> Self {
        LineSearchParams {
            c1: 1e-4,
            c2: 0.9,
            alpha_init: 1.0,
            alpha_max: 1e6,
            max_evals: 40,
        }
    }
}

/// A successful line search: accepted step and the value/derivative there.
#[derive(Debug, Clone, Copy)]
pub struct LineSearchOk {
    /// Accepted step length.
    pub alpha: f64,
    /// `φ(α)`.
    pub value: f64,
    /// `φ'(α)`.
    pub slope: f64,
    /// Number of `φ` evaluations consumed.
    pub evals: usize,
}

/// Line-search failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineSearchError {
    /// The supplied direction has non-negative slope at 0.
    NotDescent,
    /// The evaluation budget ran out before a Wolfe point was found.
    BudgetExhausted,
    /// The zoom interval collapsed to numerical noise without a Wolfe
    /// point (typical on non-smooth kinks); the caller should fall back.
    IntervalCollapsed,
}

impl std::fmt::Display for LineSearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineSearchError::NotDescent => write!(f, "direction is not a descent direction"),
            LineSearchError::BudgetExhausted => {
                write!(f, "line-search evaluation budget exhausted")
            }
            LineSearchError::IntervalCollapsed => write!(f, "line-search interval collapsed"),
        }
    }
}

impl std::error::Error for LineSearchError {}

/// Finds a step satisfying the strong Wolfe conditions for the scalar
/// function `φ(α)`, whose evaluation returns `(φ, φ')`. `phi0`/`slope0`
/// are `φ(0)` and `φ'(0)`.
///
/// Non-finite trial values are treated as `+∞` (step rejected), which
/// makes the search robust to barrier-like objectives.
///
/// # Errors
///
/// See [`LineSearchError`].
pub fn strong_wolfe<F>(
    mut phi: F,
    phi0: f64,
    slope0: f64,
    params: &LineSearchParams,
) -> Result<LineSearchOk, LineSearchError>
where
    F: FnMut(f64) -> (f64, f64),
{
    if slope0 >= 0.0 {
        return Err(LineSearchError::NotDescent);
    }
    let sanitize = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
    let mut evals = 0usize;
    let mut eval = |a: f64, evals: &mut usize| {
        *evals += 1;
        let (v, d) = phi(a);
        (sanitize(v), if d.is_finite() { d } else { 0.0 })
    };

    let mut alpha_prev = 0.0;
    let mut phi_prev = phi0;
    let mut slope_prev = slope0;
    let mut alpha = params.alpha_init.min(params.alpha_max);

    // Bracketing phase.
    let mut bracket: Option<(f64, f64, f64, f64, f64, f64)> = None;
    for i in 0.. {
        if evals >= params.max_evals {
            return Err(LineSearchError::BudgetExhausted);
        }
        let (f, d) = eval(alpha, &mut evals);
        if f > phi0 + params.c1 * alpha * slope0 || (i > 0 && f >= phi_prev) {
            bracket = Some((alpha_prev, phi_prev, slope_prev, alpha, f, d));
            break;
        }
        if d.abs() <= -params.c2 * slope0 {
            return Ok(LineSearchOk {
                alpha,
                value: f,
                slope: d,
                evals,
            });
        }
        if d >= 0.0 {
            bracket = Some((alpha, f, d, alpha_prev, phi_prev, slope_prev));
            break;
        }
        if alpha >= params.alpha_max {
            // Monotone descent all the way to the cap: accept the cap.
            return Ok(LineSearchOk {
                alpha,
                value: f,
                slope: d,
                evals,
            });
        }
        alpha_prev = alpha;
        phi_prev = f;
        slope_prev = d;
        alpha = (alpha * 2.0).min(params.alpha_max);
    }

    // Zoom phase on the bracket (lo has the lower φ).
    let (mut lo, mut flo, mut dlo, mut hi, mut fhi, mut _dhi) =
        bracket.expect("bracket set before zoom");
    loop {
        if evals >= params.max_evals {
            return Err(LineSearchError::BudgetExhausted);
        }
        if (hi - lo).abs() <= 1e-14 * lo.abs().max(1.0) {
            return Err(LineSearchError::IntervalCollapsed);
        }
        // Quadratic interpolation using (lo, flo, dlo) and (hi, fhi);
        // guard into the interior.
        let mid = {
            let denom = 2.0 * (fhi - flo - dlo * (hi - lo));
            let q = if denom.abs() > 1e-300 && fhi.is_finite() {
                lo - dlo * (hi - lo) * (hi - lo) / denom
            } else {
                f64::NAN
            };
            let (a, b) = if lo < hi { (lo, hi) } else { (hi, lo) };
            let margin = 0.1 * (b - a);
            if q.is_finite() && q > a + margin && q < b - margin {
                q
            } else {
                0.5 * (lo + hi)
            }
        };
        let (f, d) = eval(mid, &mut evals);
        if f > phi0 + params.c1 * mid * slope0 || f >= flo {
            hi = mid;
            fhi = f;
            _dhi = d;
        } else {
            if d.abs() <= -params.c2 * slope0 {
                return Ok(LineSearchOk {
                    alpha: mid,
                    value: f,
                    slope: d,
                    evals,
                });
            }
            if d * (hi - lo) >= 0.0 {
                hi = lo;
                fhi = flo;
                _dhi = dlo;
            }
            lo = mid;
            flo = f;
            dlo = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(a: f64) -> (f64, f64) {
        // φ(α) = (α − 3)², minimum at 3.
        ((a - 3.0) * (a - 3.0), 2.0 * (a - 3.0))
    }

    #[test]
    fn finds_wolfe_point_on_quadratic() {
        let p = LineSearchParams::default();
        let r = strong_wolfe(quad, 9.0, -6.0, &p).unwrap();
        // Any point with |φ'| ≤ 0.9·6 qualifies; the quadratic's Wolfe
        // region is (0.3, 5.7).
        assert!(r.alpha > 0.3 && r.alpha < 5.7, "alpha = {}", r.alpha);
        assert!(r.value < 9.0);
    }

    #[test]
    fn rejects_ascent_direction() {
        let p = LineSearchParams::default();
        let r = strong_wolfe(quad, 9.0, 6.0, &p);
        assert_eq!(r.unwrap_err(), LineSearchError::NotDescent);
    }

    #[test]
    fn handles_nan_regions_as_infinite() {
        // φ = (α − 1.5)² for α < 2, NaN beyond — the search must reject
        // the NaN cliff and settle near the interior minimum.
        let phi = |a: f64| {
            if a < 2.0 {
                ((a - 1.5) * (a - 1.5), 2.0 * (a - 1.5))
            } else {
                (f64::NAN, f64::NAN)
            }
        };
        let p = LineSearchParams {
            alpha_init: 4.0,
            ..Default::default()
        };
        let r = strong_wolfe(phi, 2.25, -3.0, &p).unwrap();
        assert!(r.alpha < 2.0);
        assert!(r.value < 2.25);
    }

    #[test]
    fn monotone_decrease_accepts_alpha_max() {
        let phi = |a: f64| (-a, -1.0);
        let p = LineSearchParams {
            alpha_max: 8.0,
            ..Default::default()
        };
        let r = strong_wolfe(phi, 0.0, -1.0, &p).unwrap();
        assert_eq!(r.alpha, 8.0);
    }

    #[test]
    fn steep_then_flat_function() {
        // φ(α) = α⁴ − α: descent at 0, minimum near 0.63.
        let phi = |a: f64| (a.powi(4) - a, 4.0 * a.powi(3) - 1.0);
        let p = LineSearchParams::default();
        let r = strong_wolfe(phi, 0.0, -1.0, &p).unwrap();
        assert!((r.alpha - 0.63).abs() < 0.35, "alpha = {}", r.alpha);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let phi = |a: f64| ((a - 1e-9).abs(), if a > 1e-9 { 1.0 } else { -1.0 });
        let p = LineSearchParams {
            max_evals: 3,
            c2: 1e-9, // unreachably strict curvature condition
            ..Default::default()
        };
        let err = strong_wolfe(phi, 1e-9, -1.0, &p).unwrap_err();
        assert!(
            err == LineSearchError::BudgetExhausted || err == LineSearchError::IntervalCollapsed
        );
    }
}
