//! Finite-difference gradients for verifying analytic/AD gradients.

/// Central-difference gradient of `f` at `x` with step `h`.
///
/// Intended for tests and debugging: cost is `2n` evaluations.
///
/// ```
/// use acs_opt::numgrad::finite_difference_gradient;
/// let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
/// let g = finite_difference_gradient(f, &[2.0, 0.0], 1e-6);
/// assert!((g[0] - 4.0).abs() < 1e-6);
/// assert!((g[1] - 3.0).abs() < 1e-6);
/// ```
pub fn finite_difference_gradient<F>(mut f: F, x: &[f64], h: f64) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        xp[i] = x[i] + h;
        let fp = f(&xp);
        xp[i] = x[i] - h;
        let fm = f(&xp);
        xp[i] = x[i];
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Maximum relative disagreement between `analytic` and a finite-difference
/// gradient of `f` at `x`. Useful as a one-line gradient check:
/// values below ~`1e-4` (for `h = 1e-6`) indicate a correct gradient.
pub fn max_gradient_error<F>(f: F, x: &[f64], analytic: &[f64], h: f64) -> f64
where
    F: FnMut(&[f64]) -> f64,
{
    let fd = finite_difference_gradient(f, x, h);
    fd.iter()
        .zip(analytic)
        .map(|(n, a)| (n - a).abs() / n.abs().max(a.abs()).max(1.0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Graph;

    #[test]
    fn ad_gradient_agrees_with_finite_differences_on_composite() {
        let eval = |x: &[f64]| {
            let g = Graph::new();
            let a = g.input(x[0]);
            let b = g.input(x[1]);
            let c = g.input(x[2]);
            // Mix of ops resembling the scheduler objective.
            let speed = a / (b - c + 1e-9);
            let energy = speed.sqr() * a + (b * c).softplus(0.3);
            energy.value()
        };
        let x = [2.0, 5.0, 1.0];
        let g = Graph::new();
        let a = g.input(x[0]);
        let b = g.input(x[1]);
        let c = g.input(x[2]);
        let speed = a / (b - c + 1e-9);
        let energy = speed.sqr() * a + (b * c).softplus(0.3);
        let grads = g.gradient(energy);
        let analytic = [grads.wrt(a), grads.wrt(b), grads.wrt(c)];
        let err = max_gradient_error(eval, &x, &analytic, 1e-6);
        assert!(err < 1e-6, "gradient mismatch: {err}");
    }

    #[test]
    fn detects_wrong_gradient() {
        let f = |x: &[f64]| x[0] * x[0];
        let err = max_gradient_error(f, &[3.0], &[5.0], 1e-6); // true grad is 6
        assert!(err > 0.1);
    }
}
