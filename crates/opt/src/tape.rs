//! Tape-based reverse-mode automatic differentiation.
//!
//! The optimizer re-builds a fresh expression graph at every merit-function
//! evaluation (values are eager, the tape only records local partial
//! derivatives), then a single reverse sweep yields the gradient with
//! respect to every input at `O(#nodes)` cost. This is the textbook
//! "tape" design: flat arena, two-parent nodes, no graph reuse, no
//! allocation inside the hot loop beyond the arena `Vec`s.
//!
//! ```
//! use acs_opt::tape::Graph;
//!
//! let g = Graph::new();
//! let x = g.input(3.0);
//! let y = g.input(2.0);
//! let f = (x * y + x.sin()) * y; // f = (xy + sin x)·y
//! let grad = g.gradient(f);
//! let (dx, dy) = (grad.wrt(x), grad.wrt(y));
//! assert!((dx - (2.0 * 2.0 + 3.0_f64.cos() * 2.0)).abs() < 1e-12);
//! assert!((dy - (2.0 * 3.0 * 2.0 + 3.0_f64.sin())).abs() < 1e-12);
//! ```

use std::cell::RefCell;
use std::ops::{Add, Div, Mul, Neg, Sub};

#[derive(Debug, Clone, Copy)]
struct Node {
    parents: [u32; 2],
    partials: [f64; 2],
}

#[derive(Debug, Default)]
struct TapeInner {
    nodes: Vec<Node>,
    /// Scratch adjoint buffer reused by [`Graph::gradient_wrt`] so warm
    /// re-evaluations of the same problem allocate nothing.
    adjoint: Vec<f64>,
}

impl TapeInner {
    fn push(&mut self, parents: [u32; 2], partials: [f64; 2]) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { parents, partials });
        idx
    }
}

/// An expression graph / AD tape.
///
/// Create leaves with [`Graph::input`] (differentiable) or
/// [`Graph::constant`], combine them with the overloaded operators and
/// methods on [`Expr`], then call [`Graph::gradient`].
#[derive(Debug, Default)]
pub struct Graph {
    inner: RefCell<TapeInner>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with capacity for `n` nodes pre-allocated.
    pub fn with_capacity(n: usize) -> Self {
        let g = Graph::new();
        g.inner.borrow_mut().nodes.reserve(n);
        g
    }

    /// Clears the tape while keeping its backing allocations, so the next
    /// build reuses the grown arena instead of reallocating. Any [`Expr`]
    /// handle created before the reset is invalidated (its index may point
    /// at a different node, or out of bounds); callers must rebuild the
    /// expression graph from fresh [`Graph::input`] calls.
    pub fn reset(&self) {
        self.inner.borrow_mut().nodes.clear();
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// `true` when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A differentiable leaf with the given value.
    pub fn input(&self, value: f64) -> Expr<'_> {
        let idx = self
            .inner
            .borrow_mut()
            .push([u32::MAX, u32::MAX], [0.0, 0.0]);
        Expr {
            graph: self,
            idx,
            val: value,
        }
    }

    /// A constant leaf. Identical to [`Graph::input`] for evaluation; the
    /// distinction is documentation only (gradients w.r.t. constants are
    /// simply never read).
    pub fn constant(&self, value: f64) -> Expr<'_> {
        self.input(value)
    }

    /// Computes `d output / d node` for every node by one reverse sweep.
    pub fn gradient(&self, output: Expr<'_>) -> Gradient {
        debug_assert!(std::ptr::eq(output.graph, self), "expr from another graph");
        let tape = self.inner.borrow();
        let n = tape.nodes.len();
        let mut adjoint = vec![0.0f64; n];
        adjoint[output.idx as usize] = 1.0;
        for i in (0..n).rev() {
            let a = adjoint[i];
            if a == 0.0 {
                continue;
            }
            let node = tape.nodes[i];
            for p in 0..2 {
                let parent = node.parents[p];
                if parent != u32::MAX {
                    adjoint[parent as usize] += a * node.partials[p];
                }
            }
        }
        Gradient { adjoint }
    }

    /// Allocation-free variant of [`Graph::gradient`]: runs the reverse
    /// sweep in an internal scratch buffer (reused across calls) and
    /// writes the derivatives w.r.t. `xs` straight into `out`. Numerically
    /// identical to `gradient` + [`Gradient::write_wrt`].
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `out` have different lengths.
    pub fn gradient_wrt(&self, output: Expr<'_>, xs: &[Expr<'_>], out: &mut [f64]) {
        debug_assert!(std::ptr::eq(output.graph, self), "expr from another graph");
        assert_eq!(xs.len(), out.len());
        let mut tape = self.inner.borrow_mut();
        let tape = &mut *tape;
        let n = tape.nodes.len();
        tape.adjoint.clear();
        tape.adjoint.resize(n, 0.0);
        tape.adjoint[output.idx as usize] = 1.0;
        for i in (0..n).rev() {
            let a = tape.adjoint[i];
            if a == 0.0 {
                continue;
            }
            let node = tape.nodes[i];
            for p in 0..2 {
                let parent = node.parents[p];
                if parent != u32::MAX {
                    tape.adjoint[parent as usize] += a * node.partials[p];
                }
            }
        }
        for (o, x) in out.iter_mut().zip(xs) {
            *o = tape.adjoint[x.idx as usize];
        }
    }

    fn unary(&self, a: Expr<'_>, value: f64, partial: f64) -> Expr<'_> {
        let idx = self
            .inner
            .borrow_mut()
            .push([a.idx, u32::MAX], [partial, 0.0]);
        Expr {
            graph: self,
            idx,
            val: value,
        }
    }

    fn binary(&self, a: Expr<'_>, b: Expr<'_>, value: f64, pa: f64, pb: f64) -> Expr<'_> {
        debug_assert!(
            std::ptr::eq(a.graph, b.graph),
            "exprs from different graphs"
        );
        let idx = self.inner.borrow_mut().push([a.idx, b.idx], [pa, pb]);
        Expr {
            graph: self,
            idx,
            val: value,
        }
    }
}

/// The result of a reverse sweep: adjoints of every node.
#[derive(Debug, Clone)]
pub struct Gradient {
    adjoint: Vec<f64>,
}

impl Gradient {
    /// Derivative of the swept output with respect to `x`.
    pub fn wrt(&self, x: Expr<'_>) -> f64 {
        self.adjoint[x.idx as usize]
    }

    /// Copies the derivatives w.r.t. each listed expression into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `out` have different lengths.
    pub fn write_wrt(&self, xs: &[Expr<'_>], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len());
        for (o, x) in out.iter_mut().zip(xs) {
            *o = self.adjoint[x.idx as usize];
        }
    }
}

/// A handle to a node of a [`Graph`]. Cheap to copy; combine with `+ - * /`
/// and the methods below. Values are computed eagerly, so [`Expr::value`]
/// is free.
#[derive(Clone, Copy)]
pub struct Expr<'g> {
    graph: &'g Graph,
    idx: u32,
    /// Values are eager; caching the node's value in the handle makes
    /// [`Expr::value`] and every operand read borrow-free.
    val: f64,
}

impl std::fmt::Debug for Expr<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Expr(#{} = {})", self.idx, self.value())
    }
}

impl<'g> Expr<'g> {
    /// Current value of this node.
    pub fn value(self) -> f64 {
        self.val
    }

    /// `self²` (cheaper than `powi(2)` to read).
    pub fn sqr(self) -> Expr<'g> {
        let v = self.value();
        self.graph.unary(self, v * v, 2.0 * v)
    }

    /// Integer power.
    pub fn powi(self, n: i32) -> Expr<'g> {
        let v = self.value();
        self.graph
            .unary(self, v.powi(n), f64::from(n) * v.powi(n - 1))
    }

    /// Real power (requires a positive base for a meaningful derivative).
    pub fn powf(self, p: f64) -> Expr<'g> {
        let v = self.value();
        self.graph.unary(self, v.powf(p), p * v.powf(p - 1.0))
    }

    /// Square root.
    pub fn sqrt(self) -> Expr<'g> {
        let v = self.value();
        let s = v.sqrt();
        self.graph.unary(self, s, 0.5 / s)
    }

    /// Natural exponential.
    pub fn exp(self) -> Expr<'g> {
        let e = self.value().exp();
        self.graph.unary(self, e, e)
    }

    /// Natural logarithm.
    pub fn ln(self) -> Expr<'g> {
        let v = self.value();
        self.graph.unary(self, v.ln(), 1.0 / v)
    }

    /// Sine (used only by tests; kept public as a generic smooth op).
    pub fn sin(self) -> Expr<'g> {
        let v = self.value();
        self.graph.unary(self, v.sin(), v.cos())
    }

    /// Reciprocal `1/x`.
    pub fn recip(self) -> Expr<'g> {
        let v = self.value();
        self.graph.unary(self, 1.0 / v, -1.0 / (v * v))
    }

    /// Exact `max(self, 0)` with the convention that the derivative at the
    /// kink is 0. Continuous, piecewise-smooth; safe inside augmented
    /// Lagrangian penalty terms, which square it.
    pub fn relu(self) -> Expr<'g> {
        let v = self.value();
        let (val, d) = if v > 0.0 { (v, 1.0) } else { (0.0, 0.0) };
        self.graph.unary(self, val, d)
    }

    /// Exact `max(self, other)`; at ties the derivative follows `self`.
    pub fn max_exact(self, other: Expr<'g>) -> Expr<'g> {
        let (a, b) = (self.value(), other.value());
        if a >= b {
            self.graph.binary(self, other, a, 1.0, 0.0)
        } else {
            self.graph.binary(self, other, b, 0.0, 1.0)
        }
    }

    /// Exact `min(self, other)`; at ties the derivative follows `self`.
    pub fn min_exact(self, other: Expr<'g>) -> Expr<'g> {
        let (a, b) = (self.value(), other.value());
        if a <= b {
            self.graph.binary(self, other, a, 1.0, 0.0)
        } else {
            self.graph.binary(self, other, b, 0.0, 1.0)
        }
    }

    /// Numerically stable softplus with temperature `tau`:
    /// `τ·ln(1 + e^{x/τ})`. Smooth overestimate of `max(x, 0)`;
    /// approaches it as `τ → 0`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive.
    pub fn softplus(self, tau: f64) -> Expr<'g> {
        assert!(tau > 0.0, "softplus temperature must be positive");
        let x = self.value() / tau;
        // Stable: softplus(x) = max(x,0) + ln(1+exp(-|x|)).
        let val = tau * (x.max(0.0) + (-x.abs()).exp().ln_1p());
        // d/dx τ·softplus(x/τ) = sigmoid(x/τ).
        let d = if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        };
        self.graph.unary(self, val, d)
    }

    /// Smooth `max(self, other)` via `other + softplus(self − other)`.
    /// Upper-bounds the exact max; error `≤ τ·ln 2`.
    pub fn smooth_max(self, other: Expr<'g>, tau: f64) -> Expr<'g> {
        other + (self - other).softplus(tau)
    }

    /// Smooth `clamp(self, lo, hi)` as
    /// `lo + softplus(x − lo) − softplus(x − hi)`; exact as `τ → 0`.
    pub fn smooth_clamp(self, lo: Expr<'g>, hi: Expr<'g>, tau: f64) -> Expr<'g> {
        lo + (self - lo).softplus(tau) - (self - hi).softplus(tau)
    }

    /// Exact `clamp(self, lo, hi)` (piecewise; derivative 1 strictly
    /// inside, 0 outside, ties resolve to the interior branch).
    pub fn clamp_exact(self, lo: Expr<'g>, hi: Expr<'g>) -> Expr<'g> {
        self.max_exact(lo).min_exact(hi)
    }

    /// A custom differentiable unary op: the caller supplies the output
    /// value and the local derivative `d out / d self`. Used for the
    /// voltage inversion `V(f)` of non-linear frequency laws where the
    /// derivative comes from the implicit-function rule.
    pub fn custom_unary(self, value: f64, partial: f64) -> Expr<'g> {
        self.graph.unary(self, value, partial)
    }
}

// ---- operator overloads -----------------------------------------------------

impl<'g> Add for Expr<'g> {
    type Output = Expr<'g>;
    fn add(self, rhs: Expr<'g>) -> Expr<'g> {
        self.graph
            .binary(self, rhs, self.value() + rhs.value(), 1.0, 1.0)
    }
}

impl<'g> Sub for Expr<'g> {
    type Output = Expr<'g>;
    fn sub(self, rhs: Expr<'g>) -> Expr<'g> {
        self.graph
            .binary(self, rhs, self.value() - rhs.value(), 1.0, -1.0)
    }
}

impl<'g> Mul for Expr<'g> {
    type Output = Expr<'g>;
    fn mul(self, rhs: Expr<'g>) -> Expr<'g> {
        let (a, b) = (self.value(), rhs.value());
        self.graph.binary(self, rhs, a * b, b, a)
    }
}

impl<'g> Div for Expr<'g> {
    type Output = Expr<'g>;
    fn div(self, rhs: Expr<'g>) -> Expr<'g> {
        let (a, b) = (self.value(), rhs.value());
        self.graph.binary(self, rhs, a / b, 1.0 / b, -a / (b * b))
    }
}

impl<'g> Neg for Expr<'g> {
    type Output = Expr<'g>;
    fn neg(self) -> Expr<'g> {
        self.graph.unary(self, -self.value(), -1.0)
    }
}

impl<'g> Add<f64> for Expr<'g> {
    type Output = Expr<'g>;
    fn add(self, rhs: f64) -> Expr<'g> {
        self.graph.unary(self, self.value() + rhs, 1.0)
    }
}

impl<'g> Add<Expr<'g>> for f64 {
    type Output = Expr<'g>;
    fn add(self, rhs: Expr<'g>) -> Expr<'g> {
        rhs + self
    }
}

impl<'g> Sub<f64> for Expr<'g> {
    type Output = Expr<'g>;
    fn sub(self, rhs: f64) -> Expr<'g> {
        self.graph.unary(self, self.value() - rhs, 1.0)
    }
}

impl<'g> Sub<Expr<'g>> for f64 {
    type Output = Expr<'g>;
    fn sub(self, rhs: Expr<'g>) -> Expr<'g> {
        rhs.graph.unary(rhs, self - rhs.value(), -1.0)
    }
}

impl<'g> Mul<f64> for Expr<'g> {
    type Output = Expr<'g>;
    fn mul(self, rhs: f64) -> Expr<'g> {
        self.graph.unary(self, self.value() * rhs, rhs)
    }
}

impl<'g> Mul<Expr<'g>> for f64 {
    type Output = Expr<'g>;
    fn mul(self, rhs: Expr<'g>) -> Expr<'g> {
        rhs * self
    }
}

impl<'g> Div<f64> for Expr<'g> {
    type Output = Expr<'g>;
    fn div(self, rhs: f64) -> Expr<'g> {
        self.graph.unary(self, self.value() / rhs, 1.0 / rhs)
    }
}

impl<'g> Div<Expr<'g>> for f64 {
    type Output = Expr<'g>;
    fn div(self, rhs: Expr<'g>) -> Expr<'g> {
        let b = rhs.value();
        rhs.graph.unary(rhs, self / b, -self / (b * b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; x.len()];
        let h = 1e-6;
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            xp[i] = x[i] + h;
            let fp = f(&xp);
            xp[i] = x[i] - h;
            let fm = f(&xp);
            xp[i] = x[i];
            g[i] = (fp - fm) / (2.0 * h);
        }
        g
    }

    #[test]
    fn basic_arithmetic_values() {
        let g = Graph::new();
        let x = g.input(3.0);
        let y = g.input(4.0);
        assert_eq!((x + y).value(), 7.0);
        assert_eq!((x - y).value(), -1.0);
        assert_eq!((x * y).value(), 12.0);
        assert_eq!((x / y).value(), 0.75);
        assert_eq!((-x).value(), -3.0);
        assert_eq!((x + 1.0).value(), 4.0);
        assert_eq!((1.0 + x).value(), 4.0);
        assert_eq!((x - 1.0).value(), 2.0);
        assert_eq!((1.0 - x).value(), -2.0);
        assert_eq!((x * 2.0).value(), 6.0);
        assert_eq!((2.0 * x).value(), 6.0);
        assert_eq!((x / 2.0).value(), 1.5);
        assert_eq!((12.0 / x).value(), 4.0);
    }

    #[test]
    fn polynomial_gradient() {
        let g = Graph::new();
        let x = g.input(2.0);
        let y = g.input(-1.0);
        // f = x³y + 2x − y²
        let f = x.powi(3) * y + 2.0 * x - y.sqr();
        assert_eq!(f.value(), -8.0 + 4.0 - 1.0);
        let grad = g.gradient(f);
        assert!((grad.wrt(x) - (-3.0 * 4.0 + 2.0)).abs() < 1e-12);
        assert!((grad.wrt(y) - (8.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn transcendental_gradients_match_finite_differences() {
        let eval = |x: &[f64]| {
            let g = Graph::new();
            let a = g.input(x[0]);
            let b = g.input(x[1]);
            ((a * b).exp() + (a / b).ln() + a.sqrt() * b.powf(1.7)).value()
        };
        let x = [1.3, 0.8];
        let fd = finite_diff(eval, &x);
        let g = Graph::new();
        let a = g.input(x[0]);
        let b = g.input(x[1]);
        let f = (a * b).exp() + (a / b).ln() + a.sqrt() * b.powf(1.7);
        let grad = g.gradient(f);
        assert!(
            (grad.wrt(a) - fd[0]).abs() < 1e-5,
            "{} vs {}",
            grad.wrt(a),
            fd[0]
        );
        assert!(
            (grad.wrt(b) - fd[1]).abs() < 1e-5,
            "{} vs {}",
            grad.wrt(b),
            fd[1]
        );
    }

    #[test]
    fn shared_subexpression_accumulates() {
        let g = Graph::new();
        let x = g.input(2.0);
        let s = x * x; // used twice
        let f = s + s;
        let grad = g.gradient(f);
        assert_eq!(grad.wrt(x), 8.0);
    }

    #[test]
    fn relu_and_exact_max_min() {
        let g = Graph::new();
        let x = g.input(-2.0);
        let y = g.input(3.0);
        assert_eq!(x.relu().value(), 0.0);
        assert_eq!(y.relu().value(), 3.0);
        assert_eq!(x.max_exact(y).value(), 3.0);
        assert_eq!(x.min_exact(y).value(), -2.0);
        let f = x.max_exact(y) * 2.0;
        let grad = g.gradient(f);
        assert_eq!(grad.wrt(x), 0.0);
        assert_eq!(grad.wrt(y), 2.0);
    }

    #[test]
    fn softplus_limits_and_derivative() {
        let g = Graph::new();
        // Large positive -> ~x; large negative -> ~0.
        let x = g.input(50.0);
        assert!((x.softplus(0.1).value() - 50.0).abs() < 1e-9);
        let y = g.input(-50.0);
        assert!(y.softplus(0.1).value().abs() < 1e-9);
        // Derivative is sigmoid.
        let z = g.input(0.0);
        let s = z.softplus(2.0);
        let grad = g.gradient(s);
        assert!((grad.wrt(z) - 0.5).abs() < 1e-12);
        // No overflow for extreme inputs.
        let w = g.input(1e6);
        assert!(w.softplus(1e-3).value().is_finite());
    }

    #[test]
    fn smooth_max_upper_bounds_and_converges() {
        let g = Graph::new();
        let a = g.input(1.0);
        let b = g.input(1.2);
        for tau in [1.0, 0.1, 1e-3] {
            let m = a.smooth_max(b, tau).value();
            assert!(m >= 1.2 - 1e-12);
            assert!(m <= 1.2 + tau * (2.0f64).ln() + 1e-12);
        }
    }

    #[test]
    fn smooth_clamp_limits() {
        let g = Graph::new();
        let lo = g.constant(0.0);
        let hi = g.constant(1.0);
        let tau = 1e-4;
        assert!(g.input(-5.0).smooth_clamp(lo, hi, tau).value().abs() < 1e-9);
        assert!((g.input(5.0).smooth_clamp(lo, hi, tau).value() - 1.0).abs() < 1e-9);
        assert!((g.input(0.5).smooth_clamp(lo, hi, tau).value() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clamp_exact_branches() {
        let g = Graph::new();
        let lo = g.constant(0.0);
        let hi = g.constant(1.0);
        assert_eq!(g.input(-1.0).clamp_exact(lo, hi).value(), 0.0);
        assert_eq!(g.input(0.3).clamp_exact(lo, hi).value(), 0.3);
        assert_eq!(g.input(2.0).clamp_exact(lo, hi).value(), 1.0);
        let x = g.input(0.3);
        let grad = g.gradient(x.clamp_exact(lo, hi));
        assert_eq!(grad.wrt(x), 1.0);
    }

    #[test]
    fn custom_unary_propagates_partial() {
        let g = Graph::new();
        let x = g.input(4.0);
        // Pretend op: y = x², partial 2x supplied by hand.
        let y = x.custom_unary(16.0, 8.0);
        let f = y * 3.0;
        let grad = g.gradient(f);
        assert_eq!(grad.wrt(x), 24.0);
    }

    #[test]
    fn write_wrt_bulk() {
        let g = Graph::new();
        let xs: Vec<_> = (0..4).map(|i| g.input(i as f64 + 1.0)).collect();
        let mut f = g.constant(0.0);
        for &x in &xs {
            f = f + x.sqr();
        }
        let grad = g.gradient(f);
        let mut out = vec![0.0; 4];
        grad.write_wrt(&xs, &mut out);
        assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn graph_len_tracks_nodes() {
        let g = Graph::new();
        assert!(g.is_empty());
        let x = g.input(1.0);
        let _ = x + x;
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn recip_matches_division() {
        let g = Graph::new();
        let x = g.input(5.0);
        let a = x.recip();
        let b = 1.0 / x;
        assert!((a.value() - b.value()).abs() < 1e-15);
        let (ga, gb) = (g.gradient(a), g.gradient(b));
        assert!((ga.wrt(x) - gb.wrt(x)).abs() < 1e-15);
    }
}
