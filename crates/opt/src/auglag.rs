//! Augmented-Lagrangian (PHR) solver for smooth constrained problems.
//!
//! Classic Powell–Hestenes–Rockafellar scheme: the constrained problem
//!
//! ```text
//! min f(x)   s.t.  g_i(x) ≤ 0,  h_j(x) = 0
//! ```
//!
//! is solved as a sequence of unconstrained minimizations of
//!
//! ```text
//! L(x) = f + Σ_j [λ_j h_j + μ/2 h_j²]
//!          + 1/(2μ) Σ_i [max(0, ν_i + μ g_i)² − ν_i²]
//! ```
//!
//! with multiplier updates `λ_j += μ h_j`, `ν_i = max(0, ν_i + μ g_i)`
//! and a penalty bump whenever feasibility stalls. The inner solver is
//! [`crate::lbfgs`]; gradients come from the AD tape, so problems only
//! describe expressions ([`ConstrainedProblem`]).

use crate::lbfgs::{self, LbfgsConfig, LbfgsStop};
use crate::problem::ConstrainedProblem;
use crate::tape::Graph;

/// Configuration of the outer augmented-Lagrangian loop.
#[derive(Debug, Clone)]
pub struct AugLagConfig {
    /// Maximum outer (multiplier-update) iterations.
    pub outer_iters: usize,
    /// Initial penalty weight μ.
    pub mu_init: f64,
    /// Multiplier applied to μ when feasibility stalls.
    pub mu_growth: f64,
    /// Upper cap on μ.
    pub mu_max: f64,
    /// Declare convergence when the maximum constraint violation falls
    /// below this.
    pub violation_tol: f64,
    /// Required per-outer-iteration violation shrink factor; slower
    /// progress bumps μ.
    pub violation_shrink: f64,
    /// Initial smoothing temperature handed to the problem's `build`.
    pub smoothing_init: f64,
    /// Smoothing decays geometrically to (at most) this value.
    pub smoothing_final: f64,
    /// Per-outer-iteration smoothing decay factor.
    pub smoothing_decay: f64,
    /// Inner L-BFGS configuration.
    pub inner: LbfgsConfig,
}

impl Default for AugLagConfig {
    fn default() -> Self {
        AugLagConfig {
            outer_iters: 30,
            mu_init: 10.0,
            mu_growth: 10.0,
            mu_max: 1e10,
            violation_tol: 1e-6,
            violation_shrink: 0.25,
            smoothing_init: 1e-2,
            smoothing_final: 1e-7,
            smoothing_decay: 0.2,
            inner: LbfgsConfig::default(),
        }
    }
}

/// One row of the outer-iteration log.
#[derive(Debug, Clone, Copy)]
pub struct OuterLog {
    /// Objective (exact, unsmoothed) after this outer iteration.
    pub objective: f64,
    /// Maximum constraint violation after this outer iteration.
    pub violation: f64,
    /// Penalty weight used.
    pub mu: f64,
    /// Smoothing temperature used.
    pub smoothing: f64,
    /// Inner iterations consumed.
    pub inner_iterations: usize,
}

/// Result of [`solve`].
#[derive(Debug, Clone)]
pub struct AugLagResult {
    /// Final point.
    pub x: Vec<f64>,
    /// Exact objective at `x` (smoothing = 0).
    pub objective: f64,
    /// Maximum constraint violation at `x` (exact).
    pub max_violation: f64,
    /// `true` when `max_violation ≤ violation_tol`.
    pub converged: bool,
    /// Outer iterations executed.
    pub outer_iterations: usize,
    /// Total objective/gradient evaluations across all inner solves.
    pub evaluations: usize,
    /// Per-outer-iteration telemetry.
    pub history: Vec<OuterLog>,
}

/// Exact (unsmoothed) objective and violation at `x`.
fn measure(problem: &dyn ConstrainedProblem, x: &[f64]) -> (f64, f64, Vec<f64>, Vec<f64>) {
    let g = Graph::with_capacity(x.len() * 8);
    let xs: Vec<_> = x.iter().map(|&v| g.input(v)).collect();
    let exprs = problem.build(&g, &xs, 0.0);
    let obj = exprs.objective.value();
    let ineq: Vec<f64> = exprs.inequalities.iter().map(|e| e.value()).collect();
    let eq: Vec<f64> = exprs.equalities.iter().map(|e| e.value()).collect();
    let viol = ineq
        .iter()
        .map(|&v| v.max(0.0))
        .chain(eq.iter().map(|&v| v.abs()))
        .fold(0.0f64, f64::max);
    (obj, viol, ineq, eq)
}

/// Solves a constrained problem with the PHR augmented Lagrangian.
///
/// Always returns the best point seen; inspect
/// [`AugLagResult::converged`] / [`AugLagResult::max_violation`] before
/// trusting it as feasible.
pub fn solve(problem: &dyn ConstrainedProblem, config: &AugLagConfig) -> AugLagResult {
    let n = problem.dim();
    let mut x = problem.initial_point();
    assert_eq!(x.len(), n, "initial point dimension mismatch");

    // Discover constraint counts once.
    let (num_ineq, num_eq) = {
        let g = Graph::new();
        let xs: Vec<_> = x.iter().map(|&v| g.input(v)).collect();
        let e = problem.build(&g, &xs, config.smoothing_init);
        (e.inequalities.len(), e.equalities.len())
    };

    let mut nu = vec![0.0f64; num_ineq]; // inequality multipliers ≥ 0
    let mut lambda = vec![0.0f64; num_eq]; // equality multipliers
    let mut mu = config.mu_init;
    let mut smoothing = config.smoothing_init;
    let mut evaluations = 0usize;
    let mut history = Vec::new();
    let mut prev_violation = f64::INFINITY;

    let mut best_x = x.clone();
    let (mut best_obj, mut best_viol, _, _) = measure(problem, &x);

    let mut outer_done = 0usize;
    for _outer in 0..config.outer_iters {
        outer_done += 1;
        // ---- inner minimization of the merit function ----
        let merit = |xv: &[f64], grad: &mut [f64]| -> f64 {
            let g = Graph::with_capacity(n * 16);
            let xs: Vec<_> = xv.iter().map(|&v| g.input(v)).collect();
            let exprs = problem.build(&g, &xs, smoothing);
            let mut merit = exprs.objective;
            for (j, &h) in exprs.equalities.iter().enumerate() {
                merit = merit + lambda[j] * h + (mu / 2.0) * h.sqr();
            }
            for (i, &gi) in exprs.inequalities.iter().enumerate() {
                let t = (gi * mu + nu[i]).relu();
                merit = merit + (t.sqr() - nu[i] * nu[i]) / (2.0 * mu);
            }
            let grads = g.gradient(merit);
            grads.write_wrt(&xs, grad);
            merit.value()
        };
        let inner = lbfgs::minimize(merit, &x, &config.inner);
        evaluations += inner.evaluations;
        if inner.stop != LbfgsStop::NonFiniteStart {
            x = inner.x;
        }

        // ---- exact measurement and multiplier update ----
        let (obj, viol, ineq, eq) = measure(problem, &x);
        history.push(OuterLog {
            objective: obj,
            violation: viol,
            mu,
            smoothing,
            inner_iterations: inner.iterations,
        });

        let better = (viol <= config.violation_tol && obj < best_obj)
            || (best_viol > config.violation_tol && viol < best_viol);
        if better {
            best_x.clone_from(&x);
            best_obj = obj;
            best_viol = viol;
        }

        if viol <= config.violation_tol
            && smoothing <= config.smoothing_final
            && matches!(inner.stop, LbfgsStop::GradTol | LbfgsStop::FTol)
        {
            break;
        }

        for (j, &h) in eq.iter().enumerate() {
            lambda[j] += mu * h;
        }
        for (i, &gi) in ineq.iter().enumerate() {
            nu[i] = (nu[i] + mu * gi).max(0.0);
        }
        if viol > config.violation_shrink * prev_violation && viol > config.violation_tol {
            mu = (mu * config.mu_growth).min(config.mu_max);
        }
        prev_violation = viol;
        smoothing = (smoothing * config.smoothing_decay).max(config.smoothing_final);
    }

    let (obj, viol, _, _) = measure(problem, &best_x);
    AugLagResult {
        x: best_x,
        objective: obj,
        max_violation: viol,
        converged: viol <= config.violation_tol,
        outer_iterations: outer_done,
        evaluations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemExprs;
    use crate::tape::Expr;

    /// min x² + y²  s.t.  x + y = 1  →  (0.5, 0.5).
    struct EqualityQp;
    impl ConstrainedProblem for EqualityQp {
        fn dim(&self) -> usize {
            2
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: x[0].sqr() + x[1].sqr(),
                inequalities: vec![],
                equalities: vec![x[0] + x[1] - 1.0],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.0, 0.0]
        }
    }

    #[test]
    fn equality_qp() {
        let r = solve(&EqualityQp, &AugLagConfig::default());
        assert!(r.converged, "violation = {}", r.max_violation);
        assert!((r.x[0] - 0.5).abs() < 1e-4, "x = {:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 1e-4);
        assert!((r.objective - 0.5).abs() < 1e-3);
    }

    /// min (x−2)²  s.t.  x ≤ 1  →  x = 1 (active constraint).
    struct ActiveIneq;
    impl ConstrainedProblem for ActiveIneq {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: (x[0] - 2.0).sqr(),
                inequalities: vec![x[0] - 1.0],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![5.0]
        }
    }

    #[test]
    fn active_inequality() {
        let r = solve(&ActiveIneq, &AugLagConfig::default());
        assert!(r.converged);
        assert!((r.x[0] - 1.0).abs() < 1e-4, "x = {:?}", r.x);
    }

    /// min (x+1)²  s.t.  0 ≤ x ≤ 2  →  x = 0.
    struct BoxProblem;
    impl ConstrainedProblem for BoxProblem {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: (x[0] + 1.0).sqr(),
                inequalities: vec![-x[0], x[0] - 2.0],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![1.0]
        }
    }

    #[test]
    fn box_constraint_binds_at_lower() {
        let r = solve(&BoxProblem, &AugLagConfig::default());
        assert!(r.converged);
        assert!(r.x[0].abs() < 1e-4, "x = {:?}", r.x);
    }

    /// Energy-shaped posynomial with a time budget — the WCS sanity
    /// structure: min Σ wᵢ³/tᵢ² s.t. Σ tᵢ = T, tᵢ ≥ ε. The optimum runs
    /// everything at the common speed Σwᵢ/T, i.e. tᵢ = wᵢ·T/Σw.
    struct EnergySplit {
        w: Vec<f64>,
        total: f64,
    }
    impl ConstrainedProblem for EnergySplit {
        fn dim(&self) -> usize {
            self.w.len()
        }
        fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            let mut obj = g.constant(0.0);
            let mut sum = g.constant(0.0);
            let mut ineqs = Vec::new();
            for (i, &wi) in self.w.iter().enumerate() {
                obj = obj + g.constant(wi.powi(3)) / x[i].sqr();
                sum = sum + x[i];
                ineqs.push(0.05 - x[i]); // t_i ≥ 0.05 keeps 1/t² finite
            }
            ProblemExprs {
                objective: obj,
                inequalities: ineqs,
                equalities: vec![sum - self.total],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![self.total / self.w.len() as f64; self.w.len()]
        }
    }

    #[test]
    fn energy_split_equalizes_speed() {
        let p = EnergySplit {
            w: vec![1.0, 2.0, 3.0],
            total: 12.0,
        };
        let r = solve(&p, &AugLagConfig::default());
        assert!(r.converged, "violation = {}", r.max_violation);
        // Expected t = w·T/Σw = (2, 4, 6).
        for (ti, want) in r.x.iter().zip([2.0, 4.0, 6.0]) {
            assert!((ti - want).abs() < 1e-2, "t = {:?}", r.x);
        }
        // Common speed 0.5 ⇒ objective Σ wᵢ·0.25.
        assert!((r.objective - 0.25 * 6.0).abs() < 1e-2);
    }

    /// Infeasible: x ≤ −1 and x ≥ 1 simultaneously.
    struct Infeasible;
    impl ConstrainedProblem for Infeasible {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: x[0].sqr(),
                inequalities: vec![x[0] + 1.0, 1.0 - x[0]],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.0]
        }
    }

    #[test]
    fn infeasible_is_reported() {
        let cfg = AugLagConfig {
            outer_iters: 12,
            ..Default::default()
        };
        let r = solve(&Infeasible, &cfg);
        assert!(!r.converged);
        // Best compromise is x in [−1, 1]; violation ≥ ~1.
        assert!(r.max_violation > 0.5);
    }

    /// Problem using smoothing: min max(x, 0.3)² via smooth_max.
    struct SmoothedMax;
    impl ConstrainedProblem for SmoothedMax {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], s: f64) -> ProblemExprs<'g> {
            let floor = g.constant(0.3);
            let m = if s > 0.0 {
                x[0].smooth_max(floor, s)
            } else {
                x[0].max_exact(floor)
            };
            ProblemExprs {
                objective: m.sqr(),
                inequalities: vec![],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![4.0]
        }
    }

    #[test]
    fn smoothing_anneals_to_exact() {
        let r = solve(&SmoothedMax, &AugLagConfig::default());
        // Any x ≤ 0.3 is optimal with objective 0.09 (exact evaluation).
        assert!(r.objective <= 0.09 + 1e-6, "objective = {}", r.objective);
        assert!(r.x[0] <= 0.31, "x = {:?}", r.x);
    }

    #[test]
    fn history_is_recorded() {
        let r = solve(&EqualityQp, &AugLagConfig::default());
        assert!(!r.history.is_empty());
        assert!(r.history.last().unwrap().violation <= 1e-6);
        assert!(r.evaluations > 0);
    }
}
