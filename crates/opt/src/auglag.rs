//! Augmented-Lagrangian (PHR) solver for smooth constrained problems.
//!
//! Classic Powell–Hestenes–Rockafellar scheme: the constrained problem
//!
//! ```text
//! min f(x)   s.t.  g_i(x) ≤ 0,  h_j(x) = 0
//! ```
//!
//! is solved as a sequence of unconstrained minimizations of
//!
//! ```text
//! L(x) = f + Σ_j [λ_j h_j + μ/2 h_j²]
//!          + 1/(2μ) Σ_i [max(0, ν_i + μ g_i)² − ν_i²]
//! ```
//!
//! with multiplier updates `λ_j += μ h_j`, `ν_i = max(0, ν_i + μ g_i)`
//! and a penalty bump whenever feasibility stalls. The inner solver is
//! [`crate::lbfgs`]; gradients come from the AD tape, so problems only
//! describe expressions ([`ConstrainedProblem`]).

use crate::lbfgs::{self, LbfgsConfig, LbfgsStop};
use crate::problem::{ConstrainedProblem, LinearConstraints};
use crate::tape::{Expr, Graph};

/// Configuration of the outer augmented-Lagrangian loop.
#[derive(Debug, Clone)]
pub struct AugLagConfig {
    /// Maximum outer (multiplier-update) iterations.
    pub outer_iters: usize,
    /// Initial penalty weight μ.
    pub mu_init: f64,
    /// Multiplier applied to μ when feasibility stalls.
    pub mu_growth: f64,
    /// Upper cap on μ.
    pub mu_max: f64,
    /// Declare convergence when the maximum constraint violation falls
    /// below this.
    pub violation_tol: f64,
    /// Required per-outer-iteration violation shrink factor; slower
    /// progress bumps μ.
    pub violation_shrink: f64,
    /// Initial smoothing temperature handed to the problem's `build`.
    pub smoothing_init: f64,
    /// Smoothing decays geometrically to (at most) this value.
    pub smoothing_final: f64,
    /// Per-outer-iteration smoothing decay factor.
    pub smoothing_decay: f64,
    /// Inner L-BFGS configuration.
    pub inner: LbfgsConfig,
}

impl Default for AugLagConfig {
    fn default() -> Self {
        AugLagConfig {
            outer_iters: 30,
            mu_init: 10.0,
            mu_growth: 10.0,
            mu_max: 1e10,
            violation_tol: 1e-6,
            violation_shrink: 0.25,
            smoothing_init: 1e-2,
            smoothing_final: 1e-7,
            smoothing_decay: 0.2,
            inner: LbfgsConfig::default(),
        }
    }
}

/// One row of the outer-iteration log.
#[derive(Debug, Clone, Copy)]
pub struct OuterLog {
    /// Objective (exact, unsmoothed) after this outer iteration.
    pub objective: f64,
    /// Maximum constraint violation after this outer iteration.
    pub violation: f64,
    /// Penalty weight used.
    pub mu: f64,
    /// Smoothing temperature used.
    pub smoothing: f64,
    /// Inner iterations consumed.
    pub inner_iterations: usize,
}

/// Result of [`solve`].
#[derive(Debug, Clone)]
pub struct AugLagResult {
    /// Final point.
    pub x: Vec<f64>,
    /// Exact objective at `x` (smoothing = 0).
    pub objective: f64,
    /// Maximum constraint violation at `x` (exact).
    pub max_violation: f64,
    /// `true` when `max_violation ≤ violation_tol`.
    pub converged: bool,
    /// Outer iterations executed.
    pub outer_iterations: usize,
    /// Total objective/gradient evaluations across all inner solves.
    pub evaluations: usize,
    /// Per-outer-iteration telemetry.
    pub history: Vec<OuterLog>,
    /// Inequality multipliers ν at termination, one per inequality in
    /// build order. Feed these back into [`solve_seeded`] to warm-start
    /// a *related* solve (e.g. the next boundary of an online
    /// re-optimization) past its multiplier-estimation phase.
    pub nu: Vec<f64>,
    /// Equality multipliers λ at termination, one per equality.
    pub lambda: Vec<f64>,
}

/// Exact (unsmoothed) objective and violation at `x`, evaluated on the
/// shared (reset + reused) arena; constraint values land in
/// `ineq`/`eq`. With a linear-constraints description only the
/// objective touches the tape; constraint values come from the sparse
/// rows directly.
fn measure<'g>(
    problem: &dyn ConstrainedProblem,
    lc: Option<&LinearConstraints>,
    g: &'g Graph,
    xs: &mut Vec<Expr<'g>>,
    x: &[f64],
    ineq: &mut Vec<f64>,
    eq: &mut Vec<f64>,
) -> (f64, f64) {
    g.reset();
    xs.clear();
    xs.extend(x.iter().map(|&v| g.input(v)));
    let obj;
    ineq.clear();
    eq.clear();
    if let Some(lc) = lc {
        obj = problem.build_objective(g, xs, 0.0).value();
        ineq.extend((0..lc.ineq.rows()).map(|i| lc.ineq.value(i, x)));
        eq.extend((0..lc.eq.rows()).map(|j| lc.eq.value(j, x)));
    } else {
        let exprs = problem.build(g, xs, 0.0);
        obj = exprs.objective.value();
        ineq.extend(exprs.inequalities.iter().map(|e| e.value()));
        eq.extend(exprs.equalities.iter().map(|e| e.value()));
    }
    let viol = ineq
        .iter()
        .map(|&v| v.max(0.0))
        .chain(eq.iter().map(|&v| v.abs()))
        .fold(0.0f64, f64::max);
    (obj, viol)
}

/// Solves a constrained problem with the PHR augmented Lagrangian.
///
/// Always returns the best point seen; inspect
/// [`AugLagResult::converged`] / [`AugLagResult::max_violation`] before
/// trusting it as feasible.
pub fn solve(problem: &dyn ConstrainedProblem, config: &AugLagConfig) -> AugLagResult {
    solve_seeded(problem, config, None)
}

/// [`solve`] with warm-started inequality multipliers.
///
/// `nu0` seeds the PHR inequality multipliers in build order (entries
/// are clamped to `≥ 0`; missing entries default to `0`, extras are
/// ignored). When the seed comes from a structurally similar solve —
/// the previous boundary of an online re-optimization, say — the first
/// outer iteration already penalizes the right active set, which is
/// most of what the outer loop spends its iterations discovering.
/// Seeding changes the iterate trajectory, never the contract: the
/// result is still the best point seen under the exact measurements.
pub fn solve_seeded(
    problem: &dyn ConstrainedProblem,
    config: &AugLagConfig,
    nu0: Option<&[f64]>,
) -> AugLagResult {
    let n = problem.dim();
    let mut x = problem.initial_point();
    assert_eq!(x.len(), n, "initial point dimension mismatch");

    // One AD arena serves every evaluation of this solve: each build
    // resets the tape and reuses the grown node/value/adjoint buffers, so
    // warm iterations allocate nothing on the tape side.
    let g = Graph::with_capacity(n * 16);
    let mut xs: Vec<Expr<'_>> = Vec::with_capacity(n);
    let mut ineq: Vec<f64> = Vec::new();
    let mut eq: Vec<f64> = Vec::new();

    // When the problem exposes its (all-linear) constraint system, the
    // merit function puts only the objective on the tape and folds the
    // PHR penalty terms in analytically: for P = (max(0, μg+ν)² − ν²)/2μ
    // the chain rule gives ∂P/∂x = max(0, μg+ν)·∇g, and ∇g is the
    // constant coefficient row. Same math as the tape path, different
    // floating-point summation order — iterate trajectories may differ
    // within solver tolerance, the contract does not.
    let lc = problem.linear_constraints();

    // Discover constraint counts once.
    let (num_ineq, num_eq) = match &lc {
        Some(lc) => (lc.ineq.rows(), lc.eq.rows()),
        None => {
            g.reset();
            xs.clear();
            xs.extend(x.iter().map(|&v| g.input(v)));
            let e = problem.build(&g, &xs, config.smoothing_init);
            (e.inequalities.len(), e.equalities.len())
        }
    };

    let mut nu = vec![0.0f64; num_ineq]; // inequality multipliers ≥ 0
    if let Some(seed) = nu0 {
        for (d, &s) in nu.iter_mut().zip(seed) {
            *d = s.max(0.0);
        }
    }
    let mut lambda = vec![0.0f64; num_eq]; // equality multipliers
    let mut mu = config.mu_init;
    let mut smoothing = config.smoothing_init;
    let mut evaluations = 0usize;
    let mut history = Vec::new();
    let mut prev_violation = f64::INFINITY;

    let mut best_x = x.clone();
    let (mut best_obj, mut best_viol) =
        measure(problem, lc.as_ref(), &g, &mut xs, &x, &mut ineq, &mut eq);

    let mut outer_done = 0usize;
    for _outer in 0..config.outer_iters {
        outer_done += 1;
        // ---- inner minimization of the merit function ----
        let merit = |xv: &[f64], grad: &mut [f64]| -> f64 {
            g.reset();
            xs.clear();
            xs.extend(xv.iter().map(|&v| g.input(v)));
            if let Some(lc) = &lc {
                // Fast path: objective on the tape, linear penalties in f64.
                let obj = problem.build_objective(&g, &xs, smoothing);
                g.gradient_wrt(obj, &xs, grad);
                let mut merit = obj.value();
                for (j, &lam) in lambda.iter().enumerate().take(lc.eq.rows()) {
                    let h = lc.eq.value(j, xv);
                    merit += lam * h + (mu / 2.0) * h * h;
                    lc.eq.add_scaled_gradient(j, lam + mu * h, grad);
                }
                for (i, &nui) in nu.iter().enumerate().take(lc.ineq.rows()) {
                    let t = (lc.ineq.value(i, xv) * mu + nui).max(0.0);
                    merit += (t * t - nui * nui) / (2.0 * mu);
                    if t > 0.0 {
                        lc.ineq.add_scaled_gradient(i, t, grad);
                    }
                }
                return merit;
            }
            let exprs = problem.build(&g, &xs, smoothing);
            let mut merit = exprs.objective;
            for (j, &h) in exprs.equalities.iter().enumerate() {
                merit = merit + lambda[j] * h + (mu / 2.0) * h.sqr();
            }
            for (i, &gi) in exprs.inequalities.iter().enumerate() {
                let t = (gi * mu + nu[i]).relu();
                merit = merit + (t.sqr() - nu[i] * nu[i]) / (2.0 * mu);
            }
            g.gradient_wrt(merit, &xs, grad);
            merit.value()
        };
        let inner = lbfgs::minimize(merit, &x, &config.inner);
        evaluations += inner.evaluations;
        if inner.stop != LbfgsStop::NonFiniteStart {
            x = inner.x;
        }

        // ---- exact measurement and multiplier update ----
        let (obj, viol) = measure(problem, lc.as_ref(), &g, &mut xs, &x, &mut ineq, &mut eq);
        history.push(OuterLog {
            objective: obj,
            violation: viol,
            mu,
            smoothing,
            inner_iterations: inner.iterations,
        });

        let better = (viol <= config.violation_tol && obj < best_obj)
            || (best_viol > config.violation_tol && viol < best_viol);
        if better {
            best_x.clone_from(&x);
            best_obj = obj;
            best_viol = viol;
        }

        if viol <= config.violation_tol
            && smoothing <= config.smoothing_final
            && matches!(inner.stop, LbfgsStop::GradTol | LbfgsStop::FTol)
        {
            break;
        }

        for (j, &h) in eq.iter().enumerate() {
            lambda[j] += mu * h;
        }
        for (i, &gi) in ineq.iter().enumerate() {
            nu[i] = (nu[i] + mu * gi).max(0.0);
        }
        if viol > config.violation_shrink * prev_violation && viol > config.violation_tol {
            mu = (mu * config.mu_growth).min(config.mu_max);
        }
        prev_violation = viol;
        smoothing = (smoothing * config.smoothing_decay).max(config.smoothing_final);
    }

    let (obj, viol) = measure(
        problem,
        lc.as_ref(),
        &g,
        &mut xs,
        &best_x,
        &mut ineq,
        &mut eq,
    );
    AugLagResult {
        x: best_x,
        objective: obj,
        max_violation: viol,
        converged: viol <= config.violation_tol,
        outer_iterations: outer_done,
        evaluations,
        history,
        nu,
        lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemExprs;
    use crate::tape::Expr;

    /// min x² + y²  s.t.  x + y = 1  →  (0.5, 0.5).
    struct EqualityQp;
    impl ConstrainedProblem for EqualityQp {
        fn dim(&self) -> usize {
            2
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: x[0].sqr() + x[1].sqr(),
                inequalities: vec![],
                equalities: vec![x[0] + x[1] - 1.0],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.0, 0.0]
        }
    }

    #[test]
    fn equality_qp() {
        let r = solve(&EqualityQp, &AugLagConfig::default());
        assert!(r.converged, "violation = {}", r.max_violation);
        assert!((r.x[0] - 0.5).abs() < 1e-4, "x = {:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 1e-4);
        assert!((r.objective - 0.5).abs() < 1e-3);
    }

    /// min (x−2)²  s.t.  x ≤ 1  →  x = 1 (active constraint).
    struct ActiveIneq;
    impl ConstrainedProblem for ActiveIneq {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: (x[0] - 2.0).sqr(),
                inequalities: vec![x[0] - 1.0],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![5.0]
        }
    }

    #[test]
    fn active_inequality() {
        let r = solve(&ActiveIneq, &AugLagConfig::default());
        assert!(r.converged);
        assert!((r.x[0] - 1.0).abs() < 1e-4, "x = {:?}", r.x);
    }

    /// min (x+1)²  s.t.  0 ≤ x ≤ 2  →  x = 0.
    struct BoxProblem;
    impl ConstrainedProblem for BoxProblem {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: (x[0] + 1.0).sqr(),
                inequalities: vec![-x[0], x[0] - 2.0],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![1.0]
        }
    }

    #[test]
    fn box_constraint_binds_at_lower() {
        let r = solve(&BoxProblem, &AugLagConfig::default());
        assert!(r.converged);
        assert!(r.x[0].abs() < 1e-4, "x = {:?}", r.x);
    }

    /// Energy-shaped posynomial with a time budget — the WCS sanity
    /// structure: min Σ wᵢ³/tᵢ² s.t. Σ tᵢ = T, tᵢ ≥ ε. The optimum runs
    /// everything at the common speed Σwᵢ/T, i.e. tᵢ = wᵢ·T/Σw.
    struct EnergySplit {
        w: Vec<f64>,
        total: f64,
    }
    impl ConstrainedProblem for EnergySplit {
        fn dim(&self) -> usize {
            self.w.len()
        }
        fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            let mut obj = g.constant(0.0);
            let mut sum = g.constant(0.0);
            let mut ineqs = Vec::new();
            for (i, &wi) in self.w.iter().enumerate() {
                obj = obj + g.constant(wi.powi(3)) / x[i].sqr();
                sum = sum + x[i];
                ineqs.push(0.05 - x[i]); // t_i ≥ 0.05 keeps 1/t² finite
            }
            ProblemExprs {
                objective: obj,
                inequalities: ineqs,
                equalities: vec![sum - self.total],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![self.total / self.w.len() as f64; self.w.len()]
        }
    }

    #[test]
    fn energy_split_equalizes_speed() {
        let p = EnergySplit {
            w: vec![1.0, 2.0, 3.0],
            total: 12.0,
        };
        let r = solve(&p, &AugLagConfig::default());
        assert!(r.converged, "violation = {}", r.max_violation);
        // Expected t = w·T/Σw = (2, 4, 6).
        for (ti, want) in r.x.iter().zip([2.0, 4.0, 6.0]) {
            assert!((ti - want).abs() < 1e-2, "t = {:?}", r.x);
        }
        // Common speed 0.5 ⇒ objective Σ wᵢ·0.25.
        assert!((r.objective - 0.25 * 6.0).abs() < 1e-2);
    }

    /// Infeasible: x ≤ −1 and x ≥ 1 simultaneously.
    struct Infeasible;
    impl ConstrainedProblem for Infeasible {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: x[0].sqr(),
                inequalities: vec![x[0] + 1.0, 1.0 - x[0]],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.0]
        }
    }

    #[test]
    fn infeasible_is_reported() {
        let cfg = AugLagConfig {
            outer_iters: 12,
            ..Default::default()
        };
        let r = solve(&Infeasible, &cfg);
        assert!(!r.converged);
        // Best compromise is x in [−1, 1]; violation ≥ ~1.
        assert!(r.max_violation > 0.5);
    }

    /// Problem using smoothing: min max(x, 0.3)² via smooth_max.
    struct SmoothedMax;
    impl ConstrainedProblem for SmoothedMax {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], s: f64) -> ProblemExprs<'g> {
            let floor = g.constant(0.3);
            let m = if s > 0.0 {
                x[0].smooth_max(floor, s)
            } else {
                x[0].max_exact(floor)
            };
            ProblemExprs {
                objective: m.sqr(),
                inequalities: vec![],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![4.0]
        }
    }

    #[test]
    fn smoothing_anneals_to_exact() {
        let r = solve(&SmoothedMax, &AugLagConfig::default());
        // Any x ≤ 0.3 is optimal with objective 0.09 (exact evaluation).
        assert!(r.objective <= 0.09 + 1e-6, "objective = {}", r.objective);
        assert!(r.x[0] <= 0.31, "x = {:?}", r.x);
    }

    #[test]
    fn seeded_multipliers_are_reported_and_reusable() {
        let cold = solve(&ActiveIneq, &AugLagConfig::default());
        assert_eq!(cold.nu.len(), 1);
        assert!(
            cold.nu[0] > 0.0,
            "the active constraint must end with a positive multiplier, got {:?}",
            cold.nu
        );
        // Re-solving seeded with the converged multipliers reproduces the
        // optimum (negative seeds are clamped away, extras ignored).
        let warm = solve_seeded(&ActiveIneq, &AugLagConfig::default(), Some(&cold.nu));
        assert!(warm.converged);
        assert!((warm.x[0] - 1.0).abs() < 1e-4, "x = {:?}", warm.x);
        let odd = solve_seeded(&ActiveIneq, &AugLagConfig::default(), Some(&[-5.0, 9.0]));
        assert!(odd.converged);
        assert!((odd.x[0] - 1.0).abs() < 1e-4, "x = {:?}", odd.x);
    }

    /// [`EnergySplit`] with its (all-linear) constraints exposed as
    /// sparse rows, routing the solver through the f64 fast path.
    struct EnergySplitLinear(EnergySplit);
    impl ConstrainedProblem for EnergySplitLinear {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], s: f64) -> ProblemExprs<'g> {
            self.0.build(g, x, s)
        }
        fn initial_point(&self) -> Vec<f64> {
            self.0.initial_point()
        }
        fn linear_constraints(&self) -> Option<crate::problem::LinearConstraints> {
            let mut ineq = crate::problem::SparseLinear::new();
            let mut eq = crate::problem::SparseLinear::new();
            let mut sum: Vec<(usize, f64)> = Vec::new();
            for i in 0..self.0.w.len() {
                ineq.push_row(&[(i, -1.0)], 0.05);
                sum.push((i, 1.0));
            }
            eq.push_row(&sum, -self.0.total);
            Some(crate::problem::LinearConstraints { ineq, eq })
        }
        fn build_objective<'g>(&self, g: &'g Graph, x: &[Expr<'g>], _s: f64) -> Expr<'g> {
            let mut obj = g.constant(0.0);
            for (i, &wi) in self.0.w.iter().enumerate() {
                obj = obj + g.constant(wi.powi(3)) / x[i].sqr();
            }
            obj
        }
    }

    #[test]
    fn linear_fast_path_matches_tape_path() {
        let tape = solve(
            &EnergySplit {
                w: vec![1.0, 2.0, 3.0],
                total: 12.0,
            },
            &AugLagConfig::default(),
        );
        let fast = solve(
            &EnergySplitLinear(EnergySplit {
                w: vec![1.0, 2.0, 3.0],
                total: 12.0,
            }),
            &AugLagConfig::default(),
        );
        assert!(fast.converged, "violation = {}", fast.max_violation);
        assert!(
            (fast.objective - tape.objective).abs() < 1e-4,
            "objectives diverged: tape {} vs fast {}",
            tape.objective,
            fast.objective
        );
        for (a, b) in fast.x.iter().zip(&tape.x) {
            assert!((a - b).abs() < 1e-2, "fast {:?} tape {:?}", fast.x, tape.x);
        }
        // The multipliers survive the detour too: the equality λ must
        // agree (it is the shadow price of the budget).
        assert!(
            (fast.lambda[0] - tape.lambda[0]).abs() < 0.05 * tape.lambda[0].abs().max(1.0),
            "lambda diverged: tape {} vs fast {}",
            tape.lambda[0],
            fast.lambda[0]
        );
    }

    #[test]
    fn history_is_recorded() {
        let r = solve(&EqualityQp, &AugLagConfig::default());
        assert!(!r.history.is_empty());
        assert!(r.history.last().unwrap().violation <= 1e-6);
        assert!(r.evaluations > 0);
    }
}
