//! # acs-opt
//!
//! Self-contained non-linear-programming machinery for the `acsched`
//! workspace. The paper formulates offline voltage scheduling as an NLP
//! (§3.2) but does not name a solver; nothing suitable exists as an
//! offline dependency, so this crate implements the full stack:
//!
//! * [`tape`] — eager, arena-based reverse-mode autodiff with operator
//!   overloading ([`tape::Graph`] / [`tape::Expr`]), including smooth
//!   surrogates ([`tape::Expr::softplus`], [`tape::Expr::smooth_max`],
//!   [`tape::Expr::smooth_clamp`]) for the piecewise constructs of the
//!   scheduling formulation, plus exact piecewise ops for final
//!   evaluation.
//! * [`linesearch`] / [`lbfgs`] — strong-Wolfe line search and L-BFGS.
//! * [`auglag`] — a Powell–Hestenes–Rockafellar augmented-Lagrangian
//!   driver handling equality and inequality constraints, with
//!   temperature annealing for the smoothed operators.
//! * [`numgrad`] — finite-difference utilities to validate gradients.
//!
//! ## Example: constrained minimization
//!
//! ```
//! use acs_opt::auglag::{self, AugLagConfig};
//! use acs_opt::problem::{ConstrainedProblem, ProblemExprs};
//! use acs_opt::tape::{Expr, Graph};
//!
//! /// min (x−2)² + y²  s.t.  x + y = 1
//! struct Demo;
//! impl ConstrainedProblem for Demo {
//!     fn dim(&self) -> usize { 2 }
//!     fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
//!         ProblemExprs {
//!             objective: (x[0] - 2.0).sqr() + x[1].sqr(),
//!             inequalities: vec![],
//!             equalities: vec![x[0] + x[1] - 1.0],
//!         }
//!     }
//!     fn initial_point(&self) -> Vec<f64> { vec![0.0, 0.0] }
//! }
//!
//! let r = auglag::solve(&Demo, &AugLagConfig::default());
//! assert!(r.converged);
//! assert!((r.x[0] - 1.5).abs() < 1e-3 && (r.x[1] + 0.5).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auglag;
pub mod lbfgs;
pub mod linesearch;
pub mod numgrad;
pub mod problem;
pub mod tape;

pub use auglag::{AugLagConfig, AugLagResult};
pub use lbfgs::{LbfgsConfig, LbfgsResult, LbfgsStop};
pub use problem::{ConstrainedProblem, ProblemExprs};
pub use tape::{Expr, Graph};
