//! The constrained-problem interface consumed by [`crate::auglag`].

use crate::tape::{Expr, Graph};

/// Expression handles of a problem instantiated on a graph:
/// minimize `objective` subject to `inequalities[i] ≤ 0` and
/// `equalities[j] = 0`.
#[derive(Debug)]
pub struct ProblemExprs<'g> {
    /// The scalar objective to minimize.
    pub objective: Expr<'g>,
    /// Constraint expressions; feasible iff `≤ 0`.
    pub inequalities: Vec<Expr<'g>>,
    /// Constraint expressions; feasible iff `= 0`.
    pub equalities: Vec<Expr<'g>>,
}

/// A smooth constrained minimization problem, expressed by building its
/// objective and constraints on a fresh AD [`Graph`] at every evaluation.
///
/// `smoothing` is a temperature for piecewise operations (`max`, `clamp`):
/// implementations should use smooth surrogates
/// ([`Expr::softplus`]-based) when `smoothing > 0` and the exact
/// piecewise forms when `smoothing == 0`. The augmented-Lagrangian driver
/// anneals the temperature toward zero across its outer iterations and
/// evaluates all *reported* quantities at zero.
pub trait ConstrainedProblem {
    /// Number of decision variables.
    fn dim(&self) -> usize;

    /// Builds the objective and constraints at `x` on graph `g`.
    fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], smoothing: f64) -> ProblemExprs<'g>;

    /// A starting point (need not be feasible).
    fn initial_point(&self) -> Vec<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal problem used to exercise the trait object path:
    /// min (x₀−1)², no constraints.
    struct Paraboloid;

    impl ConstrainedProblem for Paraboloid {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: (x[0] - 1.0).sqr(),
                inequalities: vec![],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.0]
        }
    }

    #[test]
    fn trait_is_object_safe_and_buildable() {
        let p: &dyn ConstrainedProblem = &Paraboloid;
        let g = Graph::new();
        let xs = vec![g.input(2.0)];
        let exprs = p.build(&g, &xs, 0.0);
        assert_eq!(exprs.objective.value(), 1.0);
        assert!(exprs.inequalities.is_empty());
    }
}
