//! The constrained-problem interface consumed by [`crate::auglag`].

use crate::tape::{Expr, Graph};

/// Expression handles of a problem instantiated on a graph:
/// minimize `objective` subject to `inequalities[i] ≤ 0` and
/// `equalities[j] = 0`.
#[derive(Debug)]
pub struct ProblemExprs<'g> {
    /// The scalar objective to minimize.
    pub objective: Expr<'g>,
    /// Constraint expressions; feasible iff `≤ 0`.
    pub inequalities: Vec<Expr<'g>>,
    /// Constraint expressions; feasible iff `= 0`.
    pub equalities: Vec<Expr<'g>>,
}

/// Sparse rows of linear functions `g_i(x) = Σ_k c_k · x[col_k] + b_i`
/// in CSR layout: row `i`'s terms live at `offsets[i]..offsets[i+1]`.
///
/// This is the hot-path representation for problems whose constraints
/// are all linear (both NLPs of this workspace): the augmented
/// Lagrangian evaluates constraint values and penalty gradients
/// directly from these rows in plain `f64` — the coefficient of a
/// linear function *is* its gradient — instead of re-recording every
/// constraint on the AD tape at every merit evaluation.
#[derive(Debug, Clone, Default)]
pub struct SparseLinear {
    offsets: Vec<u32>,
    cols: Vec<u32>,
    coeffs: Vec<f64>,
    bias: Vec<f64>,
}

impl SparseLinear {
    /// An empty row set.
    pub fn new() -> Self {
        SparseLinear {
            offsets: vec![0],
            cols: Vec::new(),
            coeffs: Vec::new(),
            bias: Vec::new(),
        }
    }

    /// Appends one row `Σ coeff·x[col] + bias`.
    pub fn push_row(&mut self, terms: &[(usize, f64)], bias: f64) {
        for &(col, coeff) in terms {
            self.cols.push(col as u32);
            self.coeffs.push(coeff);
        }
        self.offsets.push(self.cols.len() as u32);
        self.bias.push(bias);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.bias.len()
    }

    /// Value of row `i` at `x`.
    #[inline]
    pub fn value(&self, i: usize, x: &[f64]) -> f64 {
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        let mut v = self.bias[i];
        for k in lo..hi {
            v += self.coeffs[k] * x[self.cols[k] as usize];
        }
        v
    }

    /// Adds `scale · ∇g_i` into `grad` (the gradient of a linear row is
    /// its constant coefficient pattern).
    #[inline]
    pub fn add_scaled_gradient(&self, i: usize, scale: f64, grad: &mut [f64]) {
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        for k in lo..hi {
            grad[self.cols[k] as usize] += scale * self.coeffs[k];
        }
    }
}

/// The linear constraint system of a [`ConstrainedProblem`] whose
/// constraints are all linear: `ineq` rows feasible iff `≤ 0`, `eq`
/// rows feasible iff `= 0`. Row order must match the order
/// [`ConstrainedProblem::build`] pushes the corresponding expressions
/// (multiplier vectors are indexed by that order and shared across both
/// evaluation paths).
#[derive(Debug, Clone, Default)]
pub struct LinearConstraints {
    /// Inequality rows (`≤ 0`).
    pub ineq: SparseLinear,
    /// Equality rows (`= 0`).
    pub eq: SparseLinear,
}

/// A smooth constrained minimization problem, expressed by building its
/// objective and constraints on a fresh AD [`Graph`] at every evaluation.
///
/// `smoothing` is a temperature for piecewise operations (`max`, `clamp`):
/// implementations should use smooth surrogates
/// ([`Expr::softplus`]-based) when `smoothing > 0` and the exact
/// piecewise forms when `smoothing == 0`. The augmented-Lagrangian driver
/// anneals the temperature toward zero across its outer iterations and
/// evaluates all *reported* quantities at zero.
pub trait ConstrainedProblem {
    /// Number of decision variables.
    fn dim(&self) -> usize;

    /// Builds the objective and constraints at `x` on graph `g`.
    fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], smoothing: f64) -> ProblemExprs<'g>;

    /// A starting point (need not be feasible).
    fn initial_point(&self) -> Vec<f64>;

    /// The constraint system as sparse linear rows, when *every*
    /// constraint is linear in `x`. Solvers that see `Some` evaluate
    /// constraints and penalty gradients in plain `f64` from these rows
    /// and build only the objective on the tape
    /// ([`ConstrainedProblem::build_objective`]) — the same math with a
    /// fraction of the tape nodes. Implementations must keep row order
    /// identical to the expression order of
    /// [`ConstrainedProblem::build`].
    fn linear_constraints(&self) -> Option<LinearConstraints> {
        None
    }

    /// Objective-only build, used together with
    /// [`ConstrainedProblem::linear_constraints`]. The default delegates
    /// to [`ConstrainedProblem::build`] (correct but wastes the
    /// constraint nodes); implementations providing linear constraints
    /// should override it to skip constraint construction entirely.
    fn build_objective<'g>(&self, g: &'g Graph, x: &[Expr<'g>], smoothing: f64) -> Expr<'g> {
        self.build(g, x, smoothing).objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal problem used to exercise the trait object path:
    /// min (x₀−1)², no constraints.
    struct Paraboloid;

    impl ConstrainedProblem for Paraboloid {
        fn dim(&self) -> usize {
            1
        }
        fn build<'g>(&self, _g: &'g Graph, x: &[Expr<'g>], _s: f64) -> ProblemExprs<'g> {
            ProblemExprs {
                objective: (x[0] - 1.0).sqr(),
                inequalities: vec![],
                equalities: vec![],
            }
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.0]
        }
    }

    #[test]
    fn trait_is_object_safe_and_buildable() {
        let p: &dyn ConstrainedProblem = &Paraboloid;
        let g = Graph::new();
        let xs = vec![g.input(2.0)];
        let exprs = p.build(&g, &xs, 0.0);
        assert_eq!(exprs.objective.value(), 1.0);
        assert!(exprs.inequalities.is_empty());
    }
}
