//! Limited-memory BFGS with strong-Wolfe line search.
//!
//! Minimizes a smooth (or piecewise-C¹) function given by a closure
//! `f(x, grad) -> value`. Used as the inner solver of the augmented
//! Lagrangian loop in [`crate::auglag`].

use crate::linesearch::{strong_wolfe, LineSearchError, LineSearchParams};
use std::collections::VecDeque;

/// Configuration of the L-BFGS loop.
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// Number of correction pairs kept (typical: 5–20).
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the gradient infinity norm falls below this.
    pub grad_tol: f64,
    /// Stop when the relative objective decrease between iterations falls
    /// below this for two consecutive iterations.
    pub f_tol_rel: f64,
    /// Line-search parameters.
    pub line_search: LineSearchParams,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            memory: 10,
            max_iters: 300,
            grad_tol: 1e-7,
            f_tol_rel: 1e-14,
            line_search: LineSearchParams::default(),
        }
    }
}

/// Why the L-BFGS loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbfgsStop {
    /// Gradient infinity norm below tolerance — converged.
    GradTol,
    /// Objective stagnated (relative decrease below `f_tol_rel`).
    FTol,
    /// Iteration budget exhausted.
    MaxIters,
    /// Line search failed twice in a row (even after a steepest-descent
    /// restart); typically a non-smooth kink.
    LineSearchFailed,
    /// The objective was non-finite at the starting point.
    NonFiniteStart,
}

/// Result of [`minimize`].
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Gradient infinity norm at `x`.
    pub grad_inf_norm: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Total objective/gradient evaluations.
    pub evaluations: usize,
    /// Termination reason.
    pub stop: LbfgsStop,
}

impl LbfgsResult {
    /// `true` when the run ended in a state usable as a solution
    /// (converged or stagnated, as opposed to exploding).
    pub fn is_usable(&self) -> bool {
        matches!(
            self.stop,
            LbfgsStop::GradTol
                | LbfgsStop::FTol
                | LbfgsStop::MaxIters
                | LbfgsStop::LineSearchFailed
        ) && self.value.is_finite()
    }
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Minimizes `f` starting from `x0`.
///
/// The closure fills `grad` and returns the objective value; it is invoked
/// once per trial point. Non-finite trial values are handled by the line
/// search (treated as +∞), so barrier-style objectives are fine as long as
/// `x0` itself evaluates finite.
pub fn minimize<F>(mut f: F, x0: &[f64], config: &LbfgsConfig) -> LbfgsResult
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut evaluations = 1usize;
    let mut value = f(&x, &mut grad);
    if !value.is_finite() {
        return LbfgsResult {
            grad_inf_norm: inf_norm(&grad),
            x,
            value,
            iterations: 0,
            evaluations,
            stop: LbfgsStop::NonFiniteStart,
        };
    }

    let mut s_mem: VecDeque<Vec<f64>> = VecDeque::with_capacity(config.memory);
    let mut y_mem: VecDeque<Vec<f64>> = VecDeque::with_capacity(config.memory);
    let mut rho_mem: VecDeque<f64> = VecDeque::with_capacity(config.memory);
    let mut gamma = 1.0f64;

    // Per-iteration scratch, hoisted so warm iterations allocate nothing.
    let mut d = vec![0.0; n];
    let mut alphas = vec![0.0; config.memory];
    let mut trial = vec![0.0; n];
    let mut trial_grad = vec![0.0; n];
    let mut new_x = vec![0.0; n];
    let mut new_grad = vec![0.0; n];

    let mut stagnant = 0usize;
    let mut ls_failures = 0usize;
    let mut iterations = 0usize;
    let stop;

    loop {
        let gnorm = inf_norm(&grad);
        if gnorm <= config.grad_tol {
            stop = LbfgsStop::GradTol;
            break;
        }
        if iterations >= config.max_iters {
            stop = LbfgsStop::MaxIters;
            break;
        }
        iterations += 1;

        // Two-loop recursion: d = -H·g.
        for (dj, gj) in d.iter_mut().zip(&grad) {
            *dj = -gj;
        }
        let k = s_mem.len();
        for i in (0..k).rev() {
            let a = rho_mem[i] * dot(&s_mem[i], &d);
            alphas[i] = a;
            for (dj, yj) in d.iter_mut().zip(&y_mem[i]) {
                *dj -= a * yj;
            }
        }
        for dj in d.iter_mut() {
            *dj *= gamma;
        }
        for i in 0..k {
            let b = rho_mem[i] * dot(&y_mem[i], &d);
            for (dj, sj) in d.iter_mut().zip(&s_mem[i]) {
                *dj += (alphas[i] - b) * sj;
            }
        }

        let mut slope = dot(&grad, &d);
        // NaN or non-negative slope both mean the direction is unusable.
        if !matches!(slope.partial_cmp(&0.0), Some(std::cmp::Ordering::Less)) {
            // Hessian approximation corrupted; restart with steepest descent.
            s_mem.clear();
            y_mem.clear();
            rho_mem.clear();
            gamma = 1.0;
            for (dj, gj) in d.iter_mut().zip(&grad) {
                *dj = -gj;
            }
            slope = -dot(&grad, &grad);
        }

        // Line search along d.
        let mut ls_evals = 0usize;
        let phi = |a: f64| {
            for i in 0..n {
                trial[i] = x[i] + a * d[i];
            }
            let v = f(&trial, &mut trial_grad);
            (v, dot(&trial_grad, &d))
        };
        // First iteration: scale the unit step by the gradient size so a
        // wildly-scaled problem does not explode on step one.
        let ls_params = LineSearchParams {
            alpha_init: if k == 0 {
                (1.0 / gnorm.max(1.0)).min(1.0)
            } else {
                1.0
            },
            ..config.line_search
        };
        let result = {
            let mut phi = phi;
            strong_wolfe(
                |a| {
                    ls_evals += 1;
                    phi(a)
                },
                value,
                slope,
                &ls_params,
            )
        };
        evaluations += ls_evals;

        match result {
            Ok(ok) => {
                ls_failures = 0;
                // Every `Ok` path of `strong_wolfe` returns straight after
                // evaluating the accepted step, so `trial`/`trial_grad`
                // hold exactly φ(α) — reuse them instead of paying one
                // more merit evaluation per iteration. `trial` was filled
                // as `x + α·d`, the same expression we'd recompute.
                std::mem::swap(&mut new_x, &mut trial);
                std::mem::swap(&mut new_grad, &mut trial_grad);
                let new_value = ok.value;

                let sy = new_x
                    .iter()
                    .zip(&x)
                    .zip(new_grad.iter().zip(&grad))
                    .map(|((xa, xb), (ga, gb))| (xa - xb) * (ga - gb))
                    .sum::<f64>();
                let ss = new_x
                    .iter()
                    .zip(&x)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
                let yy = new_grad
                    .iter()
                    .zip(&grad)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
                if sy > 1e-10 * ss.sqrt() * yy.sqrt() && yy > 0.0 {
                    // Recycle the evicted pair's buffers instead of
                    // allocating fresh ones.
                    let (mut s, mut yv) = if s_mem.len() == config.memory {
                        rho_mem.pop_front();
                        (s_mem.pop_front().unwrap(), y_mem.pop_front().unwrap())
                    } else {
                        (vec![0.0; n], vec![0.0; n])
                    };
                    for i in 0..n {
                        s[i] = new_x[i] - x[i];
                        yv[i] = new_grad[i] - grad[i];
                    }
                    rho_mem.push_back(1.0 / sy);
                    s_mem.push_back(s);
                    y_mem.push_back(yv);
                    gamma = sy / yy;
                }

                let decrease = (value - new_value).abs();
                if decrease <= config.f_tol_rel * value.abs().max(1.0) {
                    stagnant += 1;
                } else {
                    stagnant = 0;
                }
                std::mem::swap(&mut x, &mut new_x);
                std::mem::swap(&mut grad, &mut new_grad);
                value = new_value;
                if stagnant >= 2 {
                    stop = LbfgsStop::FTol;
                    break;
                }
            }
            Err(LineSearchError::NotDescent) | Err(_) => {
                ls_failures += 1;
                if ls_failures >= 2 {
                    stop = LbfgsStop::LineSearchFailed;
                    break;
                }
                // Drop the memory and retry from steepest descent.
                s_mem.clear();
                y_mem.clear();
                rho_mem.clear();
                gamma = 1.0;
            }
        }
    }

    LbfgsResult {
        grad_inf_norm: inf_norm(&grad),
        x,
        value,
        iterations,
        evaluations,
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        // f = Σ i·(x_i − i)²
        let f = |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for i in 0..x.len() {
                let w = (i + 1) as f64;
                let d = x[i] - (i + 1) as f64;
                v += w * d * d;
                g[i] = 2.0 * w * d;
            }
            v
        };
        let r = minimize(f, &[0.0; 5], &LbfgsConfig::default());
        assert_eq!(r.stop, LbfgsStop::GradTol);
        for i in 0..5 {
            assert!(
                (r.x[i] - (i + 1) as f64).abs() < 1e-6,
                "x[{i}] = {}",
                r.x[i]
            );
        }
        assert!(r.is_usable());
    }

    #[test]
    fn rosenbrock_2d() {
        let f = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (x[0], x[1]);
            g[0] = -400.0 * a * (b - a * a) - 2.0 * (1.0 - a);
            g[1] = 200.0 * (b - a * a);
            100.0 * (b - a * a).powi(2) + (1.0 - a).powi(2)
        };
        let cfg = LbfgsConfig {
            max_iters: 500,
            ..Default::default()
        };
        let r = minimize(f, &[-1.2, 1.0], &cfg);
        assert!(r.value < 1e-10, "value = {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-4);
        assert!((r.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rosenbrock_10d() {
        let f = |x: &[f64], g: &mut [f64]| {
            let n = x.len();
            let mut v = 0.0;
            g.fill(0.0);
            for i in 0..n - 1 {
                let t1 = x[i + 1] - x[i] * x[i];
                let t2 = 1.0 - x[i];
                v += 100.0 * t1 * t1 + t2 * t2;
                g[i] += -400.0 * x[i] * t1 - 2.0 * t2;
                g[i + 1] += 200.0 * t1;
            }
            v
        };
        let cfg = LbfgsConfig {
            max_iters: 2000,
            ..Default::default()
        };
        let r = minimize(f, &[0.5; 10], &cfg);
        assert!(
            r.value < 1e-8,
            "value = {} after {} iters",
            r.value,
            r.iterations
        );
    }

    #[test]
    fn already_converged_returns_immediately() {
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        };
        let r = minimize(f, &[0.0], &LbfgsConfig::default());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.stop, LbfgsStop::GradTol);
    }

    #[test]
    fn non_finite_start_detected() {
        let f = |_: &[f64], g: &mut [f64]| {
            g[0] = 0.0;
            f64::NAN
        };
        let r = minimize(f, &[1.0], &LbfgsConfig::default());
        assert_eq!(r.stop, LbfgsStop::NonFiniteStart);
        assert!(!r.is_usable());
    }

    #[test]
    fn piecewise_c1_hinge_converges_nearby() {
        // f = max(0, x)² + (x + 1)² is C¹; minimum at x = -1... actually
        // for x < 0: (x+1)², min at -1. Check we land there.
        let f = |x: &[f64], g: &mut [f64]| {
            let r = x[0].max(0.0);
            g[0] = 2.0 * r + 2.0 * (x[0] + 1.0);
            r * r + (x[0] + 1.0) * (x[0] + 1.0)
        };
        let r = minimize(f, &[2.0], &LbfgsConfig::default());
        assert!((r.x[0] + 1.0).abs() < 1e-5, "x = {}", r.x[0]);
    }

    #[test]
    fn max_iters_respected() {
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 1e9);
            (x[0] - 1e9) * (x[0] - 1e9)
        };
        let cfg = LbfgsConfig {
            max_iters: 2,
            ..Default::default()
        };
        let r = minimize(f, &[0.0], &cfg);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn badly_scaled_quadratic() {
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2e6 * x[0];
            g[1] = 2e-6 * x[1];
            1e6 * x[0] * x[0] + 1e-6 * x[1] * x[1]
        };
        let cfg = LbfgsConfig {
            max_iters: 500,
            grad_tol: 1e-9,
            ..Default::default()
        };
        let r = minimize(f, &[1.0, 1.0], &cfg);
        assert!(r.x[0].abs() < 1e-6);
        // The tiny-curvature coordinate needs the curvature pairs to kick
        // in; just require decrease.
        assert!(r.value < 1e-4);
    }
}
