//! Property-based tests for the autodiff tape and the optimizers.

use acs_opt::numgrad::finite_difference_gradient;
use acs_opt::tape::Graph;
use acs_opt::{lbfgs, LbfgsConfig};
use proptest::prelude::*;

proptest! {
    /// AD gradients of a random rational/exponential composite agree with
    /// central finite differences.
    #[test]
    fn tape_gradient_matches_finite_difference(
        a in 0.1f64..3.0,
        b in 0.1f64..3.0,
        c in 0.1f64..3.0,
        k in -2.0f64..2.0,
    ) {
        let eval = |x: &[f64]| {
            let g = Graph::new();
            let (xa, xb, xc) = (g.input(x[0]), g.input(x[1]), g.input(x[2]));
            let f = (xa * xb + k) * (xc + 1.0).ln() + (xa / xc).sqr() + (xb * 0.3).exp();
            f.value()
        };
        let x = [a, b, c];
        let g = Graph::new();
        let (xa, xb, xc) = (g.input(x[0]), g.input(x[1]), g.input(x[2]));
        let f = (xa * xb + k) * (xc + 1.0).ln() + (xa / xc).sqr() + (xb * 0.3).exp();
        let grads = g.gradient(f);
        let analytic = [grads.wrt(xa), grads.wrt(xb), grads.wrt(xc)];
        let fd = finite_difference_gradient(eval, &x, 1e-6);
        for (i, (an, nd)) in analytic.iter().zip(&fd).enumerate() {
            let scale = an.abs().max(nd.abs()).max(1.0);
            prop_assert!((an - nd).abs() < 1e-4 * scale,
                "coord {i}: {an} vs {nd}");
        }
    }

    /// softplus is a smooth upper bound of relu that tightens as τ → 0.
    #[test]
    fn softplus_bounds_relu(x in -50.0f64..50.0, tau_exp in -3i32..0) {
        let tau = 10f64.powi(tau_exp);
        let g = Graph::new();
        let v = g.input(x);
        let sp = v.softplus(tau).value();
        let relu = x.max(0.0);
        prop_assert!(sp >= relu - 1e-12);
        prop_assert!(sp <= relu + tau * (2f64).ln() + 1e-12);
    }

    /// smooth_clamp stays within an τ·ln2-widened band of the exact clamp.
    #[test]
    fn smooth_clamp_band(x in -10.0f64..10.0, lo in -2.0f64..0.0, width in 0.1f64..4.0) {
        let tau = 1e-3;
        let hi = lo + width;
        let g = Graph::new();
        let xv = g.input(x);
        let (lov, hiv) = (g.constant(lo), g.constant(hi));
        let sc = xv.smooth_clamp(lov, hiv, tau).value();
        let exact = x.clamp(lo, hi);
        prop_assert!((sc - exact).abs() <= 2.0 * tau * (2f64).ln() + 1e-9,
            "x={x} lo={lo} hi={hi}: {sc} vs {exact}");
    }

    /// L-BFGS minimizes random positive-definite quadratics to the known
    /// optimum.
    #[test]
    fn lbfgs_solves_random_quadratics(
        diag in prop::collection::vec(0.1f64..100.0, 2..8),
        shift in prop::collection::vec(-5.0f64..5.0, 2..8),
    ) {
        let n = diag.len().min(shift.len());
        let d = &diag[..n];
        let s = &shift[..n];
        let f = |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for i in 0..n {
                let e = x[i] - s[i];
                v += d[i] * e * e;
                g[i] = 2.0 * d[i] * e;
            }
            v
        };
        let r = lbfgs::minimize(f, &vec![0.0; n], &LbfgsConfig::default());
        for (i, (xi, si)) in r.x.iter().zip(s).enumerate() {
            prop_assert!((xi - si).abs() < 1e-4, "coord {i}: {xi} vs {si}");
        }
    }

    /// Gradients accumulate correctly through heavily shared
    /// subexpressions (fan-out stress).
    #[test]
    fn shared_subexpression_fanout(x0 in 0.5f64..2.0, reps in 1usize..30) {
        let g = Graph::new();
        let x = g.input(x0);
        let shared = x.sqr(); // d/dx = 2x
        let mut f = g.constant(0.0);
        for _ in 0..reps {
            f = f + shared;
        }
        let grads = g.gradient(f);
        prop_assert!((grads.wrt(x) - 2.0 * x0 * reps as f64).abs() < 1e-9);
    }
}
