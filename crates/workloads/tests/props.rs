//! Property-based tests for distributions and generators.

use acs_model::units::Freq;
use acs_model::TaskId;
use acs_preempt::FullyPreemptiveSchedule;
use acs_workloads::{cnc, gap, generate, uunifast, RandomSetConfig, TaskWorkloads, WorkloadDist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Truncated-normal samples stay in bounds for arbitrary parameters.
    #[test]
    fn truncated_normal_in_bounds(
        mean in -100.0f64..100.0,
        sd in 0.0f64..50.0,
        lo in -100.0f64..0.0,
        width in 0.1f64..200.0,
        seed in 0u64..1000,
    ) {
        let hi = lo + width;
        let d = WorkloadDist::TruncatedNormal { mean, sd, lo, hi };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = d.sample(&mut rng);
            prop_assert!((lo..=hi).contains(&v), "sample {v} outside [{lo}, {hi}]");
        }
    }

    /// UUniFast: exact sum, non-negative shares, any count.
    #[test]
    fn uunifast_simplex(n in 1usize..20, total in 0.01f64..1.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = uunifast(n, total, &mut rng);
        prop_assert_eq!(shares.len(), n);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(shares.iter().all(|&s| s >= -1e-12));
    }

    /// Generated task sets satisfy the paper's protocol for any
    /// (count, ratio) in range.
    #[test]
    fn generator_respects_protocol(
        n in 1usize..8,
        ratio in 0.05f64..1.0,
        seed in 0u64..500,
    ) {
        let fmax = Freq::from_cycles_per_ms(200.0);
        let cfg = RandomSetConfig::paper(n, ratio, fmax);
        let set = generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(set.len(), n);
        // The 1-cycle WCEC floor can add ~n·5e-4 utilization for tiny
        // UUniFast shares.
        prop_assert!((set.utilization_at(fmax) - 0.7).abs() < 0.01);
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        prop_assert!(fps.len() <= 1000);
        for t in set.tasks() {
            prop_assert!(t.bcec() <= t.acec() && t.acec() <= t.wcec());
            prop_assert!((10..=30).contains(&t.period().get()));
        }
    }

    /// CNC and GAP scale to any requested utilization.
    #[test]
    fn reallife_utilization_scaling(ratio in 0.05f64..1.0, util in 0.1f64..0.95) {
        let fmax = Freq::from_cycles_per_ms(200.0);
        for set in [cnc(fmax, ratio, util).unwrap(), gap(fmax, ratio, util).unwrap()] {
            prop_assert!((set.utilization_at(fmax) - util).abs() < 1e-9);
        }
    }

    /// Workload sampling is deterministic per seed and within task bounds.
    #[test]
    fn sampler_bounds_and_determinism(seed in 0u64..500) {
        let fmax = Freq::from_cycles_per_ms(200.0);
        let cfg = RandomSetConfig::paper(3, 0.1, fmax);
        let set = generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        let mut a = TaskWorkloads::paper(&set, seed);
        let mut b = TaskWorkloads::paper(&set, seed);
        for i in 0..30 {
            for t in 0..set.len() {
                let va = a.draw(TaskId(t), i);
                let vb = b.draw(TaskId(t), i);
                prop_assert_eq!(va, vb);
                let task = set.task(TaskId(t));
                prop_assert!(va >= task.bcec() && va <= task.wcec());
            }
        }
    }
}
