//! Execution-cycle distributions.
//!
//! The paper's experiments draw each instance's cycles from a normal
//! distribution with mean ACEC and standard deviation `(WCEC − BCEC)/6`,
//! truncated to `[BCEC, WCEC]` (§4). Additional shapes (uniform, bimodal,
//! constant) support the ablation studies: bimodal workloads are the
//! "normally small, occasionally large" pattern the paper's abstract
//! motivates.

use acs_model::units::Cycles;
use acs_model::{Task, TaskId, TaskSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distribution over execution cycles for one task.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadDist {
    /// Every instance takes exactly this many cycles.
    Constant(f64),
    /// Normal `N(mean, sd²)` truncated to `[lo, hi]` by rejection.
    TruncatedNormal {
        /// Mean before truncation.
        mean: f64,
        /// Standard deviation before truncation.
        sd: f64,
        /// Lower bound (typically BCEC).
        lo: f64,
        /// Upper bound (typically WCEC).
        hi: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Two-point mixture: `lo` with probability `1 − p_heavy`, `hi` with
    /// probability `p_heavy` — tasks that are usually cheap but
    /// occasionally hit their worst case.
    Bimodal {
        /// Common-case cycles.
        lo: f64,
        /// Rare-case cycles.
        hi: f64,
        /// Probability of the rare case.
        p_heavy: f64,
    },
}

impl WorkloadDist {
    /// The paper's distribution for a task: mean ACEC,
    /// `σ = (WCEC − BCEC)/6`, truncated to `[BCEC, WCEC]`.
    pub fn paper_normal(task: &Task) -> Self {
        WorkloadDist::TruncatedNormal {
            mean: task.acec().as_cycles(),
            sd: (task.wcec().as_cycles() - task.bcec().as_cycles()) / 6.0,
            lo: task.bcec().as_cycles(),
            hi: task.wcec().as_cycles(),
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            WorkloadDist::Constant(c) => c,
            WorkloadDist::TruncatedNormal { mean, sd, lo, hi } => {
                if sd <= 0.0 || hi <= lo {
                    return mean.clamp(lo, hi);
                }
                // Rejection sampling; with the paper's ±3σ window the
                // acceptance rate is ≈ 99.7%, so the cap is cosmetic.
                for _ in 0..1000 {
                    let v = mean + sd * standard_normal(rng);
                    if (lo..=hi).contains(&v) {
                        return v;
                    }
                }
                mean.clamp(lo, hi)
            }
            WorkloadDist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            WorkloadDist::Bimodal { lo, hi, p_heavy } => {
                if rng.gen::<f64>() < p_heavy {
                    hi
                } else {
                    lo
                }
            }
        }
    }
}

/// One standard-normal variate via Box–Muller (no extra crates).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A seeded per-task workload sampler, directly usable as the simulator's
/// workload closure.
///
/// ```
/// use acs_model::{Task, TaskSet, TaskId, units::{Cycles, Ticks}};
/// use acs_workloads::TaskWorkloads;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TaskSet::new(vec![
///     Task::builder("t", Ticks::new(10))
///         .wcec(Cycles::from_cycles(100.0))
///         .bcec(Cycles::from_cycles(10.0))
///         .build()?,
/// ])?;
/// let mut w = TaskWorkloads::paper(&set, 42);
/// let c = w.draw(TaskId(0), 0);
/// assert!(c.as_cycles() >= 10.0 && c.as_cycles() <= 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaskWorkloads {
    dists: Vec<WorkloadDist>,
    rng: StdRng,
}

impl TaskWorkloads {
    /// The paper's truncated-normal sampler for every task.
    pub fn paper(set: &TaskSet, seed: u64) -> Self {
        TaskWorkloads {
            dists: set.tasks().iter().map(WorkloadDist::paper_normal).collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Custom per-task distributions.
    ///
    /// # Panics
    ///
    /// Panics if `dists.len()` differs from the task count implied by its
    /// later use (no task set is captured here).
    pub fn from_dists(dists: Vec<WorkloadDist>, seed: u64) -> Self {
        TaskWorkloads {
            dists,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the workload of one job. The `_instance` index is accepted
    /// (and ignored) so the method signature matches the simulator's
    /// workload closure.
    pub fn draw(&mut self, task: TaskId, _instance: u64) -> Cycles {
        Cycles::from_cycles(self.dists[task.0].sample(&mut self.rng))
    }

    /// Draws `count` consecutive jobs of `task` in one batch, appending
    /// to `out`. Bit-identical to `count` sequential
    /// [`TaskWorkloads::draw`] calls — the batch samples the same
    /// shared RNG in the same order — so seeded draw streams are
    /// unchanged whether a consumer draws per job or per batch. The
    /// simulator's hot loop uses this to hoist the per-draw dispatch
    /// overhead out of job construction.
    pub fn draw_batch(&mut self, task: TaskId, count: u64, out: &mut Vec<Cycles>) {
        let dist = &self.dists[task.0];
        out.reserve(count as usize);
        for _ in 0..count {
            out.push(Cycles::from_cycles(dist.sample(&mut self.rng)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::Ticks;

    fn task(bcec: f64, acec: f64, wcec: f64) -> Task {
        Task::builder("t", Ticks::new(10))
            .wcec(Cycles::from_cycles(wcec))
            .acec(Cycles::from_cycles(acec))
            .bcec(Cycles::from_cycles(bcec))
            .build()
            .unwrap()
    }

    #[test]
    fn truncated_normal_respects_bounds_and_mean() {
        let d = WorkloadDist::paper_normal(&task(100.0, 550.0, 1000.0));
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = d.sample(&mut rng);
            assert!((100.0..=1000.0).contains(&v), "v = {v}");
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 550.0).abs() < 10.0, "mean = {mean}");
    }

    #[test]
    fn sigma_matches_paper_convention() {
        let d = WorkloadDist::paper_normal(&task(100.0, 550.0, 1000.0));
        match d {
            WorkloadDist::TruncatedNormal { sd, .. } => {
                assert!((sd - 150.0).abs() < 1e-12);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn degenerate_normal_returns_mean() {
        let d = WorkloadDist::TruncatedNormal {
            mean: 5.0,
            sd: 0.0,
            lo: 0.0,
            hi: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 5.0);
    }

    #[test]
    fn constant_and_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(WorkloadDist::Constant(7.0).sample(&mut rng), 7.0);
        for _ in 0..1000 {
            let v = WorkloadDist::Uniform { lo: 2.0, hi: 4.0 }.sample(&mut rng);
            assert!((2.0..=4.0).contains(&v));
        }
        assert_eq!(
            WorkloadDist::Uniform { lo: 2.0, hi: 2.0 }.sample(&mut rng),
            2.0
        );
    }

    #[test]
    fn bimodal_frequencies() {
        let d = WorkloadDist::Bimodal {
            lo: 1.0,
            hi: 9.0,
            p_heavy: 0.2,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let heavy = (0..10_000).filter(|_| d.sample(&mut rng) > 5.0).count();
        assert!((heavy as f64 / 10_000.0 - 0.2).abs() < 0.02);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let set = TaskSet::new(vec![task(100.0, 550.0, 1000.0)]).unwrap();
        let mut a = TaskWorkloads::paper(&set, 99);
        let mut b = TaskWorkloads::paper(&set, 99);
        for i in 0..100 {
            assert_eq!(a.draw(TaskId(0), i), b.draw(TaskId(0), i));
        }
        let mut c = TaskWorkloads::paper(&set, 100);
        let same = (0..100).all(|i| a.draw(TaskId(0), i) == c.draw(TaskId(0), i));
        assert!(!same);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            s1 += z;
            s2 += z * z;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }
}
