//! The two real-life applications of the paper's Fig. 6(b): the CNC
//! machine controller and the Generic Avionics Platform (GAP).
//!
//! **CNC** (Kim et al., "Visual assessment of a real-time system design:
//! a case study on a CNC controller", RTSS 1996): eight periodic control
//! tasks with harmonic periods in the 600–4800 µs range. We model time in
//! 100 µs ticks, preserving the period structure.
//!
//! **GAP** (Locke et al., "Building a predictable avionics platform in
//! Ada: a case study", RTSS 1991): seventeen periodic avionics tasks with
//! periods from 25 ms to 1 s. The published set contains non-harmonic
//! periods (40, 59, 80 ms) that make the hyper-period — and therefore the
//! fully preemptive expansion — explode past the paper's own
//! 1000-sub-instance cap; following common practice in DVS studies we
//! harmonize them to the nearest pool value ({25, 50, 100, 200, 1000}),
//! which keeps all seventeen tasks and the 25 ms–1 s period span
//! (substitution documented in `DESIGN.md`).
//!
//! Exact WCET tables are not recoverable from the DATE'05 paper; per its
//! own protocol for random sets, relative task weights follow the
//! published structure and the absolute WCECs are scaled to a target
//! worst-case utilization (default 70%). The `bcec_wcec_ratio` knob
//! reproduces the Fig. 6(b) sweep.

use crate::error::WorkloadError;
use acs_model::units::{Cycles, Freq, Ticks};
use acs_model::{Task, TaskSet};

/// Relative structure of one periodic task of a real-life set.
#[derive(Debug, Clone, Copy)]
struct Proto {
    name: &'static str,
    period: u64,
    /// Relative worst-case weight (arbitrary units, scaled to reach the
    /// target utilization).
    weight: f64,
}

/// CNC controller prototype: periods in 100 µs ticks (600 µs = 6 ticks).
const CNC: [Proto; 8] = [
    Proto {
        name: "position_x",
        period: 6,
        weight: 0.35,
    },
    Proto {
        name: "position_y",
        period: 6,
        weight: 0.40,
    },
    Proto {
        name: "velocity_x",
        period: 12,
        weight: 1.65,
    },
    Proto {
        name: "velocity_y",
        period: 12,
        weight: 1.65,
    },
    Proto {
        name: "interpolator",
        period: 24,
        weight: 5.70,
    },
    Proto {
        name: "status_update",
        period: 24,
        weight: 3.80,
    },
    Proto {
        name: "command_parse",
        period: 48,
        weight: 9.60,
    },
    Proto {
        name: "display",
        period: 48,
        weight: 12.80,
    },
];

/// GAP prototype: periods in milliseconds (harmonized pool
/// {25, 50, 100, 200, 1000}).
const GAP: [Proto; 17] = [
    Proto {
        name: "timer_interrupt",
        period: 25,
        weight: 1.0,
    },
    Proto {
        name: "aircraft_flight_data",
        period: 25,
        weight: 2.0,
    },
    Proto {
        name: "steering",
        period: 50,
        weight: 1.5,
    }, // 40 ms harmonized
    Proto {
        name: "radar_control",
        period: 50,
        weight: 2.5,
    },
    Proto {
        name: "target_tracking",
        period: 50,
        weight: 2.0,
    },
    Proto {
        name: "target_sweetening",
        period: 50,
        weight: 1.5,
    }, // 59 ms harmonized
    Proto {
        name: "hud_display",
        period: 50,
        weight: 3.0,
    },
    Proto {
        name: "display_graphics",
        period: 100,
        weight: 4.0,
    }, // 80 ms harmonized
    Proto {
        name: "nav_update",
        period: 100,
        weight: 3.0,
    }, // 80 ms harmonized
    Proto {
        name: "weapon_protocol",
        period: 100,
        weight: 1.0,
    },
    Proto {
        name: "nav_steering",
        period: 200,
        weight: 3.0,
    },
    Proto {
        name: "tracking_filter",
        period: 200,
        weight: 2.0,
    },
    Proto {
        name: "weapon_release",
        period: 200,
        weight: 1.0,
    },
    Proto {
        name: "weapon_aiming",
        period: 1000,
        weight: 3.0,
    },
    Proto {
        name: "nav_status",
        period: 1000,
        weight: 1.0,
    },
    Proto {
        name: "bet_e_status",
        period: 1000,
        weight: 1.0,
    },
    Proto {
        name: "bit_processing",
        period: 1000,
        weight: 2.0,
    },
];

fn build(
    protos: &[Proto],
    f_max: Freq,
    bcec_wcec_ratio: f64,
    target_utilization: f64,
) -> Result<TaskSet, WorkloadError> {
    if !(0.0 < bcec_wcec_ratio && bcec_wcec_ratio <= 1.0) {
        return Err(WorkloadError::InvalidConfig {
            reason: format!("BCEC/WCEC ratio must be in (0, 1], got {bcec_wcec_ratio}"),
        });
    }
    if !(0.0 < target_utilization && target_utilization <= 1.0) {
        return Err(WorkloadError::InvalidConfig {
            reason: format!("target utilization must be in (0, 1], got {target_utilization}"),
        });
    }
    let fmax = f_max.as_cycles_per_ms();
    if fmax <= 0.0 {
        return Err(WorkloadError::InvalidConfig {
            reason: "f_max must be positive".into(),
        });
    }
    // Scale weights so that Σ wcec/(p·fmax) = target.
    let weight_util: f64 = protos.iter().map(|p| p.weight / p.period as f64).sum();
    let scale = target_utilization * fmax / weight_util;
    let tasks: Vec<Task> = protos
        .iter()
        .map(|p| {
            let wcec = p.weight * scale;
            let bcec = wcec * bcec_wcec_ratio;
            Task::builder(p.name, Ticks::new(p.period))
                .wcec(Cycles::from_cycles(wcec))
                .bcec(Cycles::from_cycles(bcec))
                .acec(Cycles::from_cycles((wcec + bcec) / 2.0))
                .build()
        })
        .collect::<Result<_, _>>()?;
    Ok(TaskSet::new(tasks)?)
}

/// The CNC machine-controller task set (8 tasks; time unit 100 µs).
///
/// # Errors
///
/// [`WorkloadError::InvalidConfig`] on out-of-range parameters.
pub fn cnc(
    f_max: Freq,
    bcec_wcec_ratio: f64,
    target_utilization: f64,
) -> Result<TaskSet, WorkloadError> {
    build(&CNC, f_max, bcec_wcec_ratio, target_utilization)
}

/// The Generic Avionics Platform task set (17 tasks; time unit 1 ms).
///
/// # Errors
///
/// [`WorkloadError::InvalidConfig`] on out-of-range parameters.
pub fn gap(
    f_max: Freq,
    bcec_wcec_ratio: f64,
    target_utilization: f64,
) -> Result<TaskSet, WorkloadError> {
    build(&GAP, f_max, bcec_wcec_ratio, target_utilization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_preempt::FullyPreemptiveSchedule;

    fn fmax() -> Freq {
        Freq::from_cycles_per_ms(200.0)
    }

    #[test]
    fn cnc_structure() {
        let set = cnc(fmax(), 0.5, 0.7).unwrap();
        assert_eq!(set.len(), 8);
        assert_eq!(set.hyper_period(), Ticks::new(48));
        assert!((set.utilization_at(fmax()) - 0.7).abs() < 1e-9);
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        // 8 segments (multiples of 6 in 48) × 8 tasks.
        assert_eq!(fps.len(), 64);
    }

    #[test]
    fn gap_structure_respects_paper_cap() {
        let set = gap(fmax(), 0.5, 0.7).unwrap();
        assert_eq!(set.len(), 17);
        assert_eq!(set.hyper_period(), Ticks::new(1000));
        assert!((set.utilization_at(fmax()) - 0.7).abs() < 1e-9);
        let fps = FullyPreemptiveSchedule::expand_capped(&set, 1000).unwrap();
        // 40 segments × 17 tasks = 680 ≤ the paper's 1000 cap.
        assert_eq!(fps.len(), 680);
    }

    #[test]
    fn ratio_sweep_changes_only_cycle_spread() {
        let a = cnc(fmax(), 0.1, 0.7).unwrap();
        let b = cnc(fmax(), 0.9, 0.7).unwrap();
        for (ta, tb) in a.tasks().iter().zip(b.tasks()) {
            assert_eq!(ta.period(), tb.period());
            assert_eq!(ta.wcec(), tb.wcec());
            assert!(ta.bcec() < tb.bcec());
            assert!(ta.acec() < tb.acec());
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(cnc(fmax(), 0.0, 0.7).is_err());
        assert!(cnc(fmax(), 0.5, 0.0).is_err());
        assert!(cnc(Freq::ZERO, 0.5, 0.7).is_err());
        assert!(gap(fmax(), 1.1, 0.7).is_err());
    }

    #[test]
    fn rm_priorities_follow_periods() {
        let set = gap(fmax(), 0.5, 0.7).unwrap();
        let periods: Vec<u64> = set.tasks().iter().map(|t| t.period().get()).collect();
        let mut sorted = periods.clone();
        sorted.sort_unstable();
        assert_eq!(periods, sorted);
    }
}
