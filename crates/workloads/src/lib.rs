//! # acs-workloads
//!
//! Workload substrate for the `acsched` workspace: everything §4 of the
//! paper needs to drive its experiments.
//!
//! * [`dist`] — execution-cycle distributions, including the paper's
//!   truncated normal (`μ = ACEC`, `σ = (WCEC − BCEC)/6`, bounds
//!   `[BCEC, WCEC]`) sampled via Box–Muller, plus uniform/bimodal/constant
//!   shapes for ablations. [`TaskWorkloads`] plugs directly into the
//!   simulator's workload closure.
//! * [`randgen`] — the paper's random task-set generator: UUniFast
//!   utilization shares at 70% worst-case utilization, periods 10–30 ms,
//!   BCEC/WCEC ratio sweep, 1000-sub-instance cap.
//! * [`reallife`] — the CNC controller (8 tasks) and Generic Avionics
//!   Platform (17 tasks) sets of Fig. 6(b).
//! * [`motivation()`] — the reconstructed Table-1 example of Figs. 1–2.
//! * [`named`] — string-keyed lookup ([`real_life`], [`paper_set_batch`])
//!   so declarative scenario files can reference these sets by name.
//!
//! ## Example
//!
//! ```
//! use acs_model::units::Freq;
//! use acs_workloads::{generate, RandomSetConfig, TaskWorkloads};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = RandomSetConfig::paper(4, 0.1, Freq::from_cycles_per_ms(200.0));
//! let set = generate(&cfg, &mut StdRng::seed_from_u64(1))?;
//! let mut draws = TaskWorkloads::paper(&set, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod motivation;
pub mod named;
pub mod randgen;
pub mod reallife;

pub use dist::{TaskWorkloads, WorkloadDist};
pub use error::WorkloadError;
pub use motivation::{
    fig1_end_times, fig2_end_times, motivation, motivation_system, reference_energies,
};
pub use named::{paper_set_batch, paper_set_name, real_life, REAL_LIFE_SETS};
pub use randgen::{generate, uunifast, RandomSetConfig};
pub use reallife::{cnc, gap};
