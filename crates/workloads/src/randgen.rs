//! The paper's random task-set generator (§4).
//!
//! "For a given number of tasks, one hundred random task sets were
//! constructed and each task set results in maximum one thousand
//! sub-instances. [...] The deadline of each task was chosen from a
//! uniform distribution between 10 and 30 \[ms\]. The WCEC of a particular
//! task instance was adjusted such that the processor utilization is
//! about 70% when all the tasks are running at the maximum speed."
//!
//! Arbitrary integer periods in `[10, 30]` give astronomically large
//! hyper-periods almost surely, so — consistent with the published
//! 1000-sub-instance cap — periods are drawn from the divisor-friendly
//! pool `{10, 12, 15, 16, 20, 24, 30}` (hyper-period ≤ 240 ms) and draws
//! whose expansion would exceed the cap are rejected and redrawn
//! (substitution documented in `DESIGN.md`).
//!
//! Utilization shares use **UUniFast** (Bini & Buttazzo), the standard
//! unbiased simplex sampler in the real-time-systems literature.

use crate::error::WorkloadError;
use acs_model::units::{Cycles, Freq, Ticks};
use acs_model::{Task, TaskSet};
use acs_preempt::FullyPreemptiveSchedule;
use rand::Rng;

/// Configuration of the random generator; defaults mirror the paper.
#[derive(Debug, Clone)]
pub struct RandomSetConfig {
    /// Number of tasks (paper sweeps 2–10).
    pub num_tasks: usize,
    /// `BCEC/WCEC` ratio — 0.1 is "highly flexible", 0.9 "almost fixed".
    pub bcec_wcec_ratio: f64,
    /// Worst-case utilization at maximum speed (paper: ≈ 0.7).
    pub target_utilization: f64,
    /// Maximum processor speed used for the utilization scaling.
    pub f_max: Freq,
    /// Candidate periods (ms).
    pub period_pool: Vec<u64>,
    /// Per-task effective-capacitance range (uniform draw).
    pub c_eff_range: (f64, f64),
    /// Reject draws expanding to more than this many sub-instances
    /// (paper: 1000).
    pub sub_instance_cap: usize,
    /// Give up after this many rejected draws.
    pub max_attempts: usize,
}

impl RandomSetConfig {
    /// The paper's configuration for `num_tasks` tasks at the given
    /// BCEC/WCEC ratio.
    pub fn paper(num_tasks: usize, bcec_wcec_ratio: f64, f_max: Freq) -> Self {
        RandomSetConfig {
            num_tasks,
            bcec_wcec_ratio,
            target_utilization: 0.7,
            f_max,
            period_pool: vec![10, 12, 15, 16, 20, 24, 30],
            c_eff_range: (0.5, 1.5),
            sub_instance_cap: 1000,
            max_attempts: 200,
        }
    }
}

/// UUniFast: `n` non-negative shares summing to `total`, uniformly over
/// the simplex.
pub fn uunifast(n: usize, total: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(n > 0, "need at least one share");
    let mut shares = Vec::with_capacity(n);
    let mut rest = total;
    for i in 1..n {
        let next = rest * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        shares.push(rest - next);
        rest = next;
    }
    shares.push(rest);
    shares
}

/// Generates one random task set per the configuration.
///
/// # Errors
///
/// [`WorkloadError::InvalidConfig`] for bad parameters;
/// [`WorkloadError::GenerationFailed`] when no draw fits the
/// sub-instance cap within `max_attempts`.
pub fn generate(config: &RandomSetConfig, rng: &mut impl Rng) -> Result<TaskSet, WorkloadError> {
    if config.num_tasks == 0 {
        return Err(WorkloadError::InvalidConfig {
            reason: "num_tasks must be positive".into(),
        });
    }
    if !(0.0 < config.bcec_wcec_ratio && config.bcec_wcec_ratio <= 1.0) {
        return Err(WorkloadError::InvalidConfig {
            reason: format!(
                "BCEC/WCEC ratio must be in (0, 1], got {}",
                config.bcec_wcec_ratio
            ),
        });
    }
    if !(0.0 < config.target_utilization && config.target_utilization <= 1.0) {
        return Err(WorkloadError::InvalidConfig {
            reason: format!(
                "target utilization must be in (0, 1], got {}",
                config.target_utilization
            ),
        });
    }
    if config.period_pool.is_empty() {
        return Err(WorkloadError::InvalidConfig {
            reason: "period pool must not be empty".into(),
        });
    }
    let fmax = config.f_max.as_cycles_per_ms();
    if fmax <= 0.0 {
        return Err(WorkloadError::InvalidConfig {
            reason: "f_max must be positive".into(),
        });
    }

    for _ in 0..config.max_attempts {
        let shares = uunifast(config.num_tasks, config.target_utilization, rng);
        let mut tasks = Vec::with_capacity(config.num_tasks);
        for (i, &u_i) in shares.iter().enumerate() {
            let period = config.period_pool[rng.gen_range(0..config.period_pool.len())];
            // WCEC so that wcec/(period·fmax) = u_i; at least 1 cycle.
            let wcec = (u_i * period as f64 * fmax).max(1.0);
            let bcec = (wcec * config.bcec_wcec_ratio).max(0.5);
            let acec = (bcec + wcec) / 2.0;
            let c_eff = rng.gen_range(config.c_eff_range.0..=config.c_eff_range.1);
            tasks.push(
                Task::builder(format!("t{i}"), Ticks::new(period))
                    .wcec(Cycles::from_cycles(wcec))
                    .acec(Cycles::from_cycles(acec))
                    .bcec(Cycles::from_cycles(bcec))
                    .c_eff(c_eff)
                    .build()?,
            );
        }
        let set = TaskSet::new(tasks)?;
        if FullyPreemptiveSchedule::expand_capped(&set, config.sub_instance_cap).is_ok() {
            return Ok(set);
        }
    }
    Err(WorkloadError::GenerationFailed {
        attempts: config.max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fmax() -> Freq {
        Freq::from_cycles_per_ms(200.0)
    }

    #[test]
    fn uunifast_sums_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1, 2, 5, 10] {
            let s = uunifast(n, 0.7, &mut rng);
            assert_eq!(s.len(), n);
            let sum: f64 = s.iter().sum();
            assert!((sum - 0.7).abs() < 1e-12);
            assert!(s.iter().all(|&x| (0.0..=0.7 + 1e-12).contains(&x)));
        }
    }

    #[test]
    fn uunifast_is_not_degenerate() {
        // Shares should differ from the equal split on average.
        let mut rng = StdRng::seed_from_u64(2);
        let s = uunifast(5, 1.0, &mut rng);
        let spread = s.iter().fold(0.0f64, |m, &x| m.max((x - 0.2).abs()));
        assert!(spread > 0.01);
    }

    #[test]
    fn generated_set_matches_paper_invariants() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2, 4, 6, 8, 10] {
            for ratio in [0.1, 0.5, 0.9] {
                let cfg = RandomSetConfig::paper(n, ratio, fmax());
                let set = generate(&cfg, &mut rng).unwrap();
                assert_eq!(set.len(), n);
                let u = set.utilization_at(fmax());
                assert!((u - 0.7).abs() < 0.01, "utilization = {u}");
                for t in set.tasks() {
                    assert!(
                        (t.bcec_wcec_ratio() - ratio).abs() < 0.1 || t.bcec().as_cycles() == 0.5
                    );
                    assert!(t.period().get() >= 10 && t.period().get() <= 30);
                    let mid = (t.bcec().as_cycles() + t.wcec().as_cycles()) / 2.0;
                    assert!((t.acec().as_cycles() - mid).abs() < 1e-9);
                }
                let fps = FullyPreemptiveSchedule::expand_capped(&set, 1000).unwrap();
                assert!(fps.len() <= 1000);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomSetConfig::paper(4, 0.5, fmax());
        let a = generate(&cfg, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = generate(&cfg, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = RandomSetConfig::paper(0, 0.5, fmax());
        assert!(matches!(
            generate(&cfg, &mut rng),
            Err(WorkloadError::InvalidConfig { .. })
        ));
        cfg = RandomSetConfig::paper(3, 0.0, fmax());
        assert!(generate(&cfg, &mut rng).is_err());
        cfg = RandomSetConfig::paper(3, 0.5, fmax());
        cfg.target_utilization = 1.5;
        assert!(generate(&cfg, &mut rng).is_err());
        cfg = RandomSetConfig::paper(3, 0.5, Freq::ZERO);
        assert!(generate(&cfg, &mut rng).is_err());
        cfg = RandomSetConfig::paper(3, 0.5, fmax());
        cfg.period_pool.clear();
        assert!(generate(&cfg, &mut rng).is_err());
    }

    #[test]
    fn impossible_cap_reports_generation_failure() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = RandomSetConfig::paper(10, 0.5, fmax());
        cfg.sub_instance_cap = 5; // cannot fit 10 tasks
        cfg.max_attempts = 10;
        assert_eq!(
            generate(&cfg, &mut rng),
            Err(WorkloadError::GenerationFailed { attempts: 10 })
        );
    }
}
