//! Error type for workload generation.

use acs_model::ModelError;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced while generating task sets or sampling workloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A generator parameter violated an invariant.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// No acceptable task set was found within the attempt budget
    /// (usually: every draw exceeded the sub-instance cap).
    GenerationFailed {
        /// Number of attempts made.
        attempts: usize,
    },
    /// Task-model error (propagated).
    Model(ModelError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { reason } => {
                write!(f, "invalid workload configuration: {reason}")
            }
            WorkloadError::GenerationFailed { attempts } => {
                write!(f, "no acceptable task set within {attempts} attempts")
            }
            WorkloadError::Model(e) => write!(f, "task model error: {e}"),
        }
    }
}

impl StdError for WorkloadError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            WorkloadError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for WorkloadError {
    fn from(e: ModelError) -> Self {
        WorkloadError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::GenerationFailed { attempts: 50 };
        assert!(e.to_string().contains("50"));
        let m: WorkloadError = ModelError::EmptyTaskSet.into();
        assert!(m.source().is_some());
    }
}
