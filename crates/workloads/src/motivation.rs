//! The paper's motivational example (Table 1, Figs. 1–2), reconstructed.
//!
//! Three tasks share a 20 ms frame (equal periods ⇒ the preemptive
//! machinery degenerates to non-preemptive sequential execution in
//! priority order, exactly the paper's §2.2 setting). The published
//! traces and percentages pin the parameters down uniquely:
//!
//! * `f = 50·V cycles/ms` (linear law), `Vmax = 4 V`;
//! * per task: `WCEC = 1000` cycles, `ACEC = 500`, `C_eff = 1`;
//! * WCS static ends `{6.67, 13.33, 20}` ms at 3 V; the greedy ACEC run
//!   finishes at `{3.33, 8.33, 14.17}` ms and costs `7961·C`
//!   (Fig. 1(b));
//! * the ACS-style ends `{10, 15, 20}` ms cost `6000·C` on the ACEC run
//!   (24% less) and `36000·C` in the worst case (33% more than WCS's
//!   `27000·C`), needing exactly 4 V for T2/T3 — infeasible on a 3 V
//!   part (Fig. 2).

use acs_model::units::{Cycles, Ticks, Time, Volt};
use acs_model::{Task, TaskSet};
use acs_power::{FreqModel, Processor};

/// Builds the motivational task set (three 20 ms tasks, WCEC 1000,
/// ACEC 500) and its processor (`f = 50·V`, `V ∈ [vmin, vmax]`).
///
/// # Panics
///
/// Never panics for the fixed constants used here.
pub fn motivation_system(vmax: Volt) -> (TaskSet, Processor) {
    let mk = |n: &str| {
        Task::builder(n, Ticks::new(20))
            .wcec(Cycles::from_cycles(1000.0))
            .acec(Cycles::from_cycles(500.0))
            .bcec(Cycles::from_cycles(100.0))
            .build()
            .expect("motivation constants are valid")
    };
    let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).expect("motivation set is valid");
    let cpu = Processor::builder(FreqModel::linear(50.0).expect("kappa > 0"))
        .vmin(Volt::from_volts(0.5))
        .vmax(vmax)
        .build()
        .expect("voltage range is valid");
    (set, cpu)
}

/// The default 4 V system of the example.
pub fn motivation() -> (TaskSet, Processor) {
    motivation_system(Volt::from_volts(4.0))
}

/// End times of the paper's Fig. 1(a) WCS schedule.
pub fn fig1_end_times() -> [Time; 3] {
    [
        Time::from_ms(20.0 / 3.0),
        Time::from_ms(40.0 / 3.0),
        Time::from_ms(20.0),
    ]
}

/// End times of the paper's Fig. 2 (ACS-style) schedule.
pub fn fig2_end_times() -> [Time; 3] {
    [
        Time::from_ms(10.0),
        Time::from_ms(15.0),
        Time::from_ms(20.0),
    ]
}

/// Reference energies from the paper's §2.2 discussion (in `C·V²·cycles`
/// units): `(fig1b_acec, fig2_acec, fig1_worst, fig2_worst)`.
pub fn reference_energies() -> (f64, f64, f64, f64) {
    (7961.0, 6000.0, 27000.0, 36000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::Freq;

    #[test]
    fn system_shape() {
        let (set, cpu) = motivation();
        assert_eq!(set.len(), 3);
        assert_eq!(set.hyper_period(), Ticks::new(20));
        assert_eq!(cpu.f_max(), Freq::from_cycles_per_ms(200.0));
        // All three at WCEC at 3 V exactly fill the frame.
        let demand = set.worst_case_demand_at(Freq::from_cycles_per_ms(150.0));
        assert!((demand.as_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reference_ratios_match_paper_percentages() {
        let (e1, e2, w1, w2) = reference_energies();
        assert!(((1.0 - e2 / e1) - 0.246).abs() < 0.01); // 24% improvement
        assert!((w2 / w1 - 4.0 / 3.0).abs() < 1e-9); // 33% increase
    }

    #[test]
    fn fig_end_times_ordering() {
        let f1 = fig1_end_times();
        let f2 = fig2_end_times();
        for i in 0..3 {
            assert!(f2[i] >= f1[i]);
        }
        assert_eq!(f2[2].as_ms(), 20.0);
    }
}
