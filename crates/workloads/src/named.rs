//! Name-based task-set lookup — the bridge between *declarative*
//! experiment descriptions (scenario files, the `acsched` CLI) and the
//! programmatic generators in this crate.
//!
//! Two entry points:
//!
//! * [`real_life`] resolves the paper's named real-life sets (`"cnc"`,
//!   `"gap"`) by string, so a text file can say `from cnc` instead of a
//!   Rust call.
//! * [`paper_set_batch`] expands one `(num_tasks, ratio, count, seed)`
//!   declaration into `count` named random sets under the paper's
//!   protocol, with the canonical `n{NN}_r{R}_s{III}` names used by the
//!   figure binaries since PR 1 — a scenario file that declares the same
//!   parameters reproduces the same grid rows, bit for bit.

use crate::error::WorkloadError;
use crate::randgen::{generate, RandomSetConfig};
use crate::reallife::{cnc, gap};
use acs_model::units::Freq;
use acs_model::TaskSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Names accepted by [`real_life`], for error messages and docs.
pub const REAL_LIFE_SETS: [&str; 2] = ["cnc", "gap"];

/// Resolves a real-life task set by name (`"cnc"` or `"gap"`).
///
/// # Errors
///
/// [`WorkloadError::InvalidConfig`] for an unknown name (listing the
/// known ones) or out-of-range parameters.
pub fn real_life(
    name: &str,
    f_max: Freq,
    bcec_wcec_ratio: f64,
    target_utilization: f64,
) -> Result<TaskSet, WorkloadError> {
    match name {
        "cnc" => cnc(f_max, bcec_wcec_ratio, target_utilization),
        "gap" => gap(f_max, bcec_wcec_ratio, target_utilization),
        other => Err(WorkloadError::InvalidConfig {
            reason: format!(
                "unknown real-life set `{other}` (known sets: {})",
                REAL_LIFE_SETS.join(", ")
            ),
        }),
    }
}

/// The canonical grid-row name of paper-protocol random set `idx` of
/// one `(num_tasks, ratio)` cell: `n{num_tasks:02}_r{ratio:.1}_s{idx:03}`.
///
/// [`paper_set_batch`] names its sets with this function; renderers
/// that look rows up by name (the figure binaries) must use it too, so
/// the format cannot silently diverge.
pub fn paper_set_name(num_tasks: usize, ratio: f64, idx: usize) -> String {
    format!("n{num_tasks:02}_r{ratio:.1}_s{idx:03}")
}

/// Generates `count` named paper-style random task sets for one
/// `(num_tasks, ratio)` experiment cell, ready for
/// `acs_runtime::CampaignBuilder::task_sets`.
///
/// Names come from [`paper_set_name`], unique across cells; the per-set
/// generator seed is `master_seed + idx` (deterministic). Generation
/// failures are logged to stderr and skipped, matching the paper
/// protocol's per-set accounting.
pub fn paper_set_batch(
    num_tasks: usize,
    ratio: f64,
    count: usize,
    master_seed: u64,
    f_max: Freq,
) -> Vec<(String, TaskSet)> {
    let cfg = RandomSetConfig::paper(num_tasks, ratio, f_max);
    (0..count)
        .filter_map(|idx| {
            let seed = master_seed + idx as u64;
            match generate(&cfg, &mut StdRng::seed_from_u64(seed)) {
                Ok(set) => Some((paper_set_name(num_tasks, ratio, idx), set)),
                Err(e) => {
                    eprintln!("  [n={num_tasks} ratio={ratio} set={idx}] generation: {e}");
                    None
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmax() -> Freq {
        Freq::from_cycles_per_ms(200.0)
    }

    #[test]
    fn lookup_matches_direct_constructors() {
        assert_eq!(
            real_life("cnc", fmax(), 0.5, 0.7).unwrap(),
            cnc(fmax(), 0.5, 0.7).unwrap()
        );
        assert_eq!(
            real_life("gap", fmax(), 0.1, 0.7).unwrap(),
            gap(fmax(), 0.1, 0.7).unwrap()
        );
    }

    #[test]
    fn unknown_name_lists_known_sets() {
        let err = real_life("avionics", fmax(), 0.5, 0.7).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("avionics"), "{msg}");
        assert!(msg.contains("cnc, gap"), "{msg}");
    }

    #[test]
    fn batch_names_and_determinism() {
        let a = paper_set_batch(4, 0.1, 3, 77, fmax());
        let b = paper_set_batch(4, 0.1, 3, 77, fmax());
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].0, "n04_r0.1_s000");
        assert_eq!(a[2].0, "n04_r0.1_s002");
        assert_eq!(a, b);
        // A batch at count=2 is a prefix of the count=3 batch (per-set
        // seeds depend only on the index) — scenario files can shrink
        // `count` without reshuffling every set.
        let prefix = paper_set_batch(4, 0.1, 2, 77, fmax());
        assert_eq!(prefix[..], a[..2]);
    }
}
