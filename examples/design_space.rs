//! Design-space exploration beyond the paper's assumptions: discrete
//! voltage levels and voltage-transition overhead.
//!
//! The paper assumes a continuously variable supply and zero transition
//! cost (§3.2). Real parts quantize; this example measures how much of
//! the ACS gain survives a 4-level supply and a non-zero switch cost.
//!
//! The exploration is declared in `scenarios/design_space.txt` — five
//! processor variants × {WCS, ACS} × greedy over the CNC set — and this
//! example only loads, runs and renders it. Add a processor variant by
//! editing the scenario file; no Rust required. The same file runs
//! through the CLI: `acsched run scenarios/design_space.txt`.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use acsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/design_space.txt");
    let scenario = Scenario::load(&path)?;
    let names: Vec<String> = scenario.processors.iter().map(|p| p.name.clone()).collect();
    let report = scenario.to_campaign()?.run();

    println!("CNC @ ratio 0.1 — ACS vs WCS under processor variations\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "processor", "WCS energy", "ACS energy", "improvement", "switches", "misses"
    );
    for name in &names {
        let cell = |choice| {
            report
                .find("cnc@0.1", name, choice, "greedy", "paper-normal")
                .and_then(|c| c.stats())
        };
        let (Some(w), Some(a)) = (cell(ScheduleChoice::Wcs), cell(ScheduleChoice::Acs)) else {
            println!("{name:<24} FAILED");
            continue;
        };
        if name.starts_with("discrete") {
            assert_eq!(a.deadline_misses, 0, "round-up keeps deadlines safe");
        }
        println!(
            "{:<24} {:>12.0} {:>12.0} {:>11.1}% {:>9} {:>8}",
            name,
            w.mean_energy.as_units(),
            a.mean_energy.as_units(),
            100.0 * improvement_over(w.mean_energy, a.mean_energy),
            a.voltage_switches,
            a.deadline_misses,
        );
    }
    println!(
        "\nTakeaway: quantization shrinks both schedules' gains but preserves the \
         ACS-over-WCS ordering; small transition overheads are indeed negligible \
         (paper §3's assumption)."
    );
    Ok(())
}
