//! Design-space exploration beyond the paper's assumptions: discrete
//! voltage levels and voltage-transition overhead.
//!
//! The paper assumes a continuously variable supply and zero transition
//! cost (§3.2). Real parts quantize; this example measures how much of
//! the ACS gain survives a 4-level supply and a non-zero switch cost.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use acsched::prelude::*;

fn run(
    set: &TaskSet,
    cpu: &Processor,
    schedule: &StaticSchedule,
    seed: u64,
) -> Result<SimReport, Box<dyn std::error::Error>> {
    let mut draws = TaskWorkloads::paper(set, seed);
    let out = Simulator::new(set, cpu, DvsPolicy::GreedyReclaim)
        .with_schedule(schedule)
        .with_options(SimOptions {
            hyper_periods: 200,
            deadline_tol_ms: 1e-3,
            ..Default::default()
        })
        .run(&mut |t, i| draws.draw(t, i))?;
    Ok(out.report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Processor::builder(FreqModel::linear(50.0)?)
        .vmin(Volt::from_volts(0.5))
        .vmax(Volt::from_volts(4.0))
        .build()?;
    let set = cnc(base.f_max(), 0.1, 0.7)?;
    let opts = SynthesisOptions::quick();
    let wcs = synthesize_wcs(&set, &base, &opts)?;
    let acs = synthesize_acs_warm(&set, &base, &opts, &wcs)?;

    println!("CNC @ ratio 0.1 — ACS vs WCS under processor variations\n");
    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>9}",
        "processor", "WCS energy", "ACS energy", "improvement", "switches"
    );

    // 1. The paper's ideal continuous processor.
    let w = run(&set, &base, &wcs, 9)?;
    let a = run(&set, &base, &acs, 9)?;
    println!(
        "{:<34} {:>12.0} {:>12.0} {:>11.1}% {:>9}",
        "continuous, zero overhead",
        w.energy.as_units(),
        a.energy.as_units(),
        100.0 * improvement_over(w.energy, a.energy),
        a.voltage_switches
    );

    // 2. Discrete 4-level supply (runtime rounds up — deadline-safe).
    for levels in [vec![1.0, 2.0, 3.0, 4.0], vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]] {
        let table = LevelTable::new(levels.iter().copied().map(Volt::from_volts).collect())?;
        let n = table.len();
        let cpu = Processor::builder(FreqModel::linear(50.0)?)
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .build()?;
        let w = run(&set, &cpu, &wcs, 9)?;
        let a = run(&set, &cpu, &acs, 9)?;
        assert_eq!(a.deadline_misses, 0, "round-up keeps deadlines safe");
        println!(
            "{:<34} {:>12.0} {:>12.0} {:>11.1}% {:>9}",
            format!("discrete, {n} levels"),
            w.energy.as_units(),
            a.energy.as_units(),
            100.0 * improvement_over(w.energy, a.energy),
            a.voltage_switches
        );
    }

    // 3. Transition overhead (time + energy per switch).
    for (t_us, e_cost) in [(1.0, 10.0), (5.0, 50.0)] {
        let cpu = Processor::builder(FreqModel::linear(50.0)?)
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .transition_overhead(TransitionOverhead {
                // Time unit of the CNC set is 100 µs.
                time: TimeSpan::from_ms(t_us / 100.0),
                energy: Energy::from_units(e_cost),
            })
            .build()?;
        let w = run(&set, &cpu, &wcs, 9)?;
        let a = run(&set, &cpu, &acs, 9)?;
        println!(
            "{:<34} {:>12.0} {:>12.0} {:>11.1}% {:>9}  ({} misses)",
            format!("overhead {t_us} µs / {e_cost} eu"),
            w.energy.as_units(),
            a.energy.as_units(),
            100.0 * improvement_over(w.energy, a.energy),
            a.voltage_switches,
            a.deadline_misses,
        );
    }
    println!("\nTakeaway: quantization shrinks both schedules' gains but preserves the ACS-over-WCS ordering; small transition overheads are indeed negligible (paper §3's assumption).");
    Ok(())
}
