//! Design-space exploration beyond the paper's assumptions: discrete
//! voltage levels and voltage-transition overhead.
//!
//! The paper assumes a continuously variable supply and zero transition
//! cost (§3.2). Real parts quantize; this example measures how much of
//! the ACS gain survives a 4-level supply and a non-zero switch cost.
//! The whole exploration is one `Campaign`: five processor variants ×
//! {WCS, ACS} × greedy over the CNC set, run in parallel.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use acsched::power::PowerError;
use acsched::prelude::*;

fn builder_with(vmin: f64, vmax: f64) -> Result<acsched::power::ProcessorBuilder, PowerError> {
    Ok(Processor::builder(FreqModel::linear(50.0)?)
        .vmin(Volt::from_volts(vmin))
        .vmax(Volt::from_volts(vmax)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = builder_with(0.5, 4.0)?.build()?;
    let set = cnc(base.f_max(), 0.1, 0.7)?;

    let mut campaign = Campaign::builder()
        .task_set("cnc@0.1", set)
        .processor("continuous", base)
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .workload(WorkloadSpec::Paper)
        .seeds([9])
        .hyper_periods(200)
        .synthesis(SynthesisOptions::quick());

    // Discrete supplies (runtime rounds up — deadline-safe).
    let mut names = vec!["continuous".to_string()];
    for levels in [
        vec![1.0, 2.0, 3.0, 4.0],
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
    ] {
        let table = LevelTable::new(levels.iter().copied().map(Volt::from_volts).collect())?;
        let name = format!("discrete-{}", table.len());
        let cpu = builder_with(0.5, 4.0)?.discrete_levels(table).build()?;
        campaign = campaign.processor(name.clone(), cpu);
        names.push(name);
    }
    // Transition overhead (time + energy per switch; CNC tick = 100 µs).
    for (t_us, e_cost) in [(1.0, 10.0), (5.0, 50.0)] {
        let name = format!("overhead-{t_us}us/{e_cost}eu");
        let cpu = builder_with(0.5, 4.0)?
            .transition_overhead(TransitionOverhead {
                time: TimeSpan::from_ms(t_us / 100.0),
                energy: Energy::from_units(e_cost),
            })
            .build()?;
        campaign = campaign.processor(name.clone(), cpu);
        names.push(name);
    }

    let report = campaign.build()?.run();

    println!("CNC @ ratio 0.1 — ACS vs WCS under processor variations\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "processor", "WCS energy", "ACS energy", "improvement", "switches", "misses"
    );
    for name in &names {
        let cell = |choice| {
            report
                .find("cnc@0.1", name, choice, "greedy", "paper-normal")
                .and_then(|c| c.stats())
        };
        let (Some(w), Some(a)) = (cell(ScheduleChoice::Wcs), cell(ScheduleChoice::Acs)) else {
            println!("{name:<24} FAILED");
            continue;
        };
        if name.starts_with("discrete") {
            assert_eq!(a.deadline_misses, 0, "round-up keeps deadlines safe");
        }
        println!(
            "{:<24} {:>12.0} {:>12.0} {:>11.1}% {:>9} {:>8}",
            name,
            w.mean_energy.as_units(),
            a.mean_energy.as_units(),
            100.0 * improvement_over(w.mean_energy, a.mean_energy),
            a.voltage_switches,
            a.deadline_misses,
        );
    }
    println!(
        "\nTakeaway: quantization shrinks both schedules' gains but preserves the \
         ACS-over-WCS ordering; small transition overheads are indeed negligible \
         (paper §3's assumption)."
    );
    Ok(())
}
