//! Quickstart: describe a system, synthesize ACS and WCS schedules, run
//! the greedy online DVS phase, and compare runtime energy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use acsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small mixed-criticality-ish system: a fast control loop whose
    // workload varies wildly, plus two slower housekeeping tasks.
    let set = TaskSet::new(vec![
        Task::builder("control", Ticks::new(10))
            .wcec(Cycles::from_cycles(400.0))
            .acec(Cycles::from_cycles(150.0))
            .bcec(Cycles::from_cycles(40.0))
            .build()?,
        Task::builder("telemetry", Ticks::new(20))
            .wcec(Cycles::from_cycles(600.0))
            .acec(Cycles::from_cycles(200.0))
            .bcec(Cycles::from_cycles(60.0))
            .build()?,
        Task::builder("logging", Ticks::new(20))
            .wcec(Cycles::from_cycles(300.0))
            .acec(Cycles::from_cycles(120.0))
            .bcec(Cycles::from_cycles(30.0))
            .build()?,
    ])?;
    let cpu = Processor::builder(FreqModel::linear(50.0)?)
        .vmin(Volt::from_volts(0.5))
        .vmax(Volt::from_volts(4.0))
        .build()?;
    println!(
        "task set: {} tasks, hyper-period {}, worst-case utilization {:.1}%",
        set.len(),
        set.hyper_period(),
        100.0 * set.utilization_at(cpu.f_max())
    );

    // Offline phase: the paper's ACS and the classic WCS baseline.
    let opts = SynthesisOptions::default();
    let acs = synthesize_acs(&set, &cpu, &opts)?;
    let wcs = synthesize_wcs(&set, &cpu, &opts)?;
    println!(
        "\nACS static schedule (per sub-instance):\n{}",
        acs.to_table()
    );

    // Online phase: greedy slack reclamation over 200 hyper-periods of
    // truncated-normal workloads (identical draws for both schedules).
    let sim_opts = SimOptions {
        hyper_periods: 200,
        ..Default::default()
    };
    let mut energies = Vec::new();
    for schedule in [&wcs, &acs] {
        let mut draws = TaskWorkloads::paper(&set, 2024);
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(schedule)
            .with_options(sim_opts.clone())
            .run(&mut |t, i| draws.draw(t, i))?;
        assert!(out.report.all_deadlines_met(), "hard deadlines are hard");
        println!(
            "{} runtime: {:.0} energy units over {} hyper-periods ({} jobs, 0 misses)",
            schedule.kind(),
            out.report.energy.as_units(),
            out.report.hyper_periods,
            out.report.jobs_completed
        );
        energies.push(out.report.energy);
    }
    println!(
        "\nACS saves {:.1}% runtime energy over WCS on this system.",
        100.0 * improvement_over(energies[0], energies[1])
    );
    Ok(())
}
