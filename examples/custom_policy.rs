//! Writing your own online-DVS policy — the open `Policy` API.
//!
//! Implements a stateful "exponential smoothing" policy in ~25 lines:
//! it tracks each task's observed workload with an EWMA and dispatches
//! at the speed that would finish the *predicted* workload exactly at
//! the milestone, never below the greedy worst-case-safe speed... then
//! runs it through a single `Simulator` and through a parallel
//! `Campaign` against the built-ins, with zero changes to `acs-sim`.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use acsched::prelude::*;

/// EWMA workload predictor: runs above the worst-case-safe greedy speed
/// in proportion to the predicted demand, banking slack early when jobs
/// have been running heavy (greedy is the floor, so deadlines stay
/// guaranteed).
struct EwmaBoost {
    predicted: Vec<f64>,
    alpha: f64,
}

impl EwmaBoost {
    fn new(alpha: f64) -> Self {
        EwmaBoost {
            predicted: Vec::new(),
            alpha,
        }
    }
}

impl Policy for EwmaBoost {
    fn name(&self) -> &str {
        "ewma-boost"
    }
    fn needs_schedule(&self) -> bool {
        true
    }
    fn on_start(&mut self, set: &TaskSet, _cpu: &Processor) {
        self.predicted = set.tasks().iter().map(|t| t.acec().as_cycles()).collect();
    }
    fn on_completion(&mut self, task: TaskId, actual: Cycles, _set: &TaskSet, _cpu: &Processor) {
        let p = &mut self.predicted[task.0];
        *p += self.alpha * (actual.as_cycles() - *p);
    }
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        let window = (ctx.chunk_end - ctx.now).as_ms();
        if window <= 0.0 {
            return ctx.cpu.f_max();
        }
        let greedy = ctx.chunk_budget_remaining.as_cycles() / window;
        let wcec = ctx.set.tasks()[ctx.task.0].wcec().as_cycles();
        let fraction = (self.predicted[ctx.task.0] / wcec).clamp(0.0, 1.0);
        // Hedge: the heavier the predicted demand, the more we run above
        // the worst-case-safe greedy speed to bank slack early (greedy
        // itself is the floor, so deadlines stay guaranteed).
        Freq::from_cycles_per_ms(greedy * (1.0 + 0.5 * fraction))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = Processor::builder(FreqModel::linear(50.0)?)
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()?;
    let set = cnc(cpu.f_max(), 0.1, 0.7)?;

    // --- one-off run through the Simulator ---
    let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick())?;
    let mut draws = TaskWorkloads::paper(&set, 5);
    let out = Simulator::new(&set, &cpu, EwmaBoost::new(0.2))
        .with_schedule(&schedule)
        .with_options(SimOptions {
            hyper_periods: 50,
            deadline_tol_ms: 1e-3,
            ..Default::default()
        })
        .run(&mut |t, i| draws.draw(t, i))?;
    println!(
        "Simulator: ewma-boost on CNC — energy {:.0}, misses {}\n",
        out.report.energy.as_units(),
        out.report.deadline_misses
    );
    assert!(out.report.all_deadlines_met());

    // --- head-to-head campaign against the built-ins ---
    let report = Campaign::builder()
        .task_set("cnc@0.1", set)
        .processor("linear", cpu)
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .policy(PolicySpec::static_speed())
        .policy(PolicySpec::custom(|| Box::new(EwmaBoost::new(0.2))))
        .workload(WorkloadSpec::Paper)
        .seeds(0..8)
        .hyper_periods(50)
        .build()?
        .run();
    print!("{}", report.to_table());
    assert_eq!(report.total_deadline_misses(), 0);
    println!(
        "\nA user policy is a first-class citizen: same grid, same report, \
         no changes to acs-sim internals."
    );
    Ok(())
}
