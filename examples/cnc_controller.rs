//! The CNC machine-controller case study (paper Fig. 6(b), left series).
//!
//! Synthesizes ACS and WCS schedules for the 8-task CNC set, sweeps the
//! BCEC/WCEC ratio and reports the runtime-energy improvement, plus a
//! Gantt chart of one average-case hyper-period.
//!
//! ```sh
//! cargo run --release --example cnc_controller
//! ```

use acsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = Processor::builder(FreqModel::linear(50.0)?)
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()?;
    let opts = SynthesisOptions::default();
    let sim_opts = SimOptions {
        hyper_periods: 100,
        deadline_tol_ms: 1e-3,
        ..Default::default()
    };

    println!("CNC controller (8 tasks, hyper-period 4.8 ms, time unit 100 µs)");
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "BCEC/WCEC", "WCS energy", "ACS energy", "improvement"
    );
    for ratio in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let set = cnc(cpu.f_max(), ratio, 0.7)?;
        let wcs = synthesize_wcs(&set, &cpu, &opts)?;
        let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs)?;
        let mut energy = Vec::new();
        for schedule in [&wcs, &acs] {
            let mut draws = TaskWorkloads::paper(&set, 77);
            let out = Simulator::new(&set, &cpu, GreedyReclaim)
                .with_schedule(schedule)
                .with_options(sim_opts.clone())
                .run(&mut |t, i| draws.draw(t, i))?;
            assert_eq!(out.report.deadline_misses, 0);
            energy.push(out.report.energy);
        }
        println!(
            "{:>12.1} {:>14.0} {:>14.0} {:>11.1}%",
            ratio,
            energy[0].as_units(),
            energy[1].as_units(),
            100.0 * improvement_over(energy[0], energy[1])
        );
    }

    // Show one average-case hyper-period under the ACS schedule.
    let set = cnc(cpu.f_max(), 0.1, 0.7)?;
    let acs = synthesize_acs(&set, &cpu, &opts)?;
    let mut draws = TaskWorkloads::paper(&set, 5);
    let out = Simulator::new(&set, &cpu, GreedyReclaim)
        .with_schedule(&acs)
        .with_options(SimOptions {
            record_trace: true,
            deadline_tol_ms: 1e-3,
            ..Default::default()
        })
        .run(&mut |t, i| draws.draw(t, i))?;
    println!("\nOne sampled hyper-period under ACS (ratio 0.1):");
    if let Some(trace) = out.trace {
        print!(
            "{}",
            render_gantt(&trace, &set, set.hyper_period().get() as f64, 72)
        );
    }
    Ok(())
}
