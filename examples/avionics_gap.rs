//! The Generic Avionics Platform case study (paper Fig. 6(b), right
//! series) with a policy shoot-out.
//!
//! Synthesizes ACS/WCS for the 17-task GAP set and compares all four
//! online policies: no-DVS, static speeds only, the paper's greedy
//! reclamation, and a cycle-conserving online-only baseline.
//!
//! ```sh
//! cargo run --release --example avionics_gap
//! ```

use acsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = Processor::builder(FreqModel::linear(50.0)?)
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()?;
    let ratio = 0.1;
    let set = gap(cpu.f_max(), ratio, 0.7)?;
    println!(
        "GAP (17 tasks, hyper-period {} ms, {} sub-instances), BCEC/WCEC = {ratio}",
        set.hyper_period().get(),
        FullyPreemptiveSchedule::expand(&set)?.len()
    );

    let opts = SynthesisOptions::default();
    let wcs = synthesize_wcs(&set, &cpu, &opts)?;
    let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs)?;
    let sim_opts = SimOptions {
        hyper_periods: 50,
        deadline_tol_ms: 1e-3,
        ..Default::default()
    };

    println!(
        "\n{:<28} {:>14} {:>8} {:>8}",
        "configuration", "energy", "misses", "vs no-DVS"
    );
    let mut base = None;
    let runs: Vec<(&str, Box<dyn Policy>, Option<&StaticSchedule>)> = vec![
        ("no-DVS", Box::new(NoDvs), None),
        ("ccRM (online only)", Box::new(CcRm::new()), None),
        ("WCS + static speeds", Box::new(StaticSpeed), Some(&wcs)),
        ("WCS + greedy reclaim", Box::new(GreedyReclaim), Some(&wcs)),
        ("ACS + static speeds", Box::new(StaticSpeed), Some(&acs)),
        ("ACS + greedy reclaim", Box::new(GreedyReclaim), Some(&acs)),
    ];
    for (name, policy, schedule) in runs {
        let mut draws = TaskWorkloads::paper(&set, 31);
        let mut sim = Simulator::new(&set, &cpu, policy).with_options(sim_opts.clone());
        if let Some(s) = schedule {
            sim = sim.with_schedule(s);
        }
        let out = sim.run(&mut |t, i| draws.draw(t, i))?;
        let e = out.report.energy;
        let base_e = *base.get_or_insert(e);
        println!(
            "{:<28} {:>14.0} {:>8} {:>7.1}%",
            name,
            e.as_units(),
            out.report.deadline_misses,
            100.0 * improvement_over(base_e, e)
        );
    }
    println!("\n(The paper's Fig. 6(b) reports ACS-vs-WCS improvements; see `cargo run -p acs-bench --bin fig6b_cnc_gap` for that sweep.)");
    Ok(())
}
