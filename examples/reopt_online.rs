//! The online re-optimizing DVS policy (`ReOpt`) on the paper's
//! motivational example — greedy reclamation vs boundary re-solving.
//!
//! `GreedyReclaim` stretches each chunk's remaining worst-case budget to
//! its *static* milestone; `ReOpt` re-solves the remaining schedule at
//! every job boundary, so early completions move the milestones
//! themselves. Starting from the worst-case-optimal (WCS) schedule, the
//! re-solves recover most of the offline ACS gain — online.
//!
//! ```sh
//! cargo run --release --example reopt_online
//! ```

use acsched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (set, cpu) = acsched::workloads::motivation();
    let opts = SynthesisOptions::quick();
    let wcs = synthesize_wcs(&set, &cpu, &opts)?;
    let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs)?;

    println!("policy shoot-out on the motivational example (ACEC workloads):\n");
    println!(
        "{:<22} {:>12} {:>8} {:>10}",
        "configuration", "energy", "misses", "re-solves"
    );
    let mut baseline = None;
    for (schedule, label) in [(&wcs, "WCS"), (&acs, "ACS")] {
        let policies: Vec<(&str, Box<dyn Policy>)> = vec![
            ("greedy", Box::new(GreedyReclaim)),
            ("reopt", Box::new(ReOpt::new())),
        ];
        for (name, policy) in policies {
            let out = Simulator::new(&set, &cpu, policy)
                .with_schedule(schedule)
                .run(&mut |t, _| set.tasks()[t.0].acec())?;
            let e = out.report.energy.as_units();
            let base = *baseline.get_or_insert(e);
            println!(
                "{:<22} {:>12.1} {:>8} {:>10}   ({:+.1}% vs WCS+greedy)",
                format!("{label} + {name}"),
                e,
                out.report.deadline_misses,
                out.report.boundary_resolves,
                100.0 * (e / base - 1.0),
            );
            assert!(out.report.all_deadlines_met());
        }
    }
    println!(
        "\nReOpt re-optimizes end times at every job boundary: on the WCS \
         schedule it recovers most of the offline ACS gain (paper: ≈24% \
         on this example) without any offline average-case solve."
    );
    Ok(())
}
