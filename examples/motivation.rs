//! The paper's motivational example (§2.2, Table 1, Figs. 1–2),
//! end to end: reconstructs both hand schedules, replays the greedy
//! runtime under average and worst workloads, and then lets the ACS
//! synthesizer discover the stretched schedule automatically.
//!
//! ```sh
//! cargo run --release --example motivation
//! ```

use acsched::core::{Milestone, ScheduleKind, SolveDiagnostics, StaticSchedule};
use acsched::prelude::*;
use acsched::workloads::{fig1_end_times, fig2_end_times, motivation, reference_energies};

fn hand_schedule(
    set: &TaskSet,
    ends: [Time; 3],
) -> Result<StaticSchedule, Box<dyn std::error::Error>> {
    let fps = FullyPreemptiveSchedule::expand(set)?;
    let milestones = fps
        .sub_instances()
        .iter()
        .zip(ends)
        .map(|(s, end_time)| Milestone {
            sub: s.id,
            end_time,
            worst_workload: Cycles::from_cycles(1000.0),
            avg_workload: Cycles::from_cycles(500.0),
        })
        .collect();
    Ok(StaticSchedule::from_parts(
        fps,
        milestones,
        ScheduleKind::Custom,
        SolveDiagnostics {
            converged: true,
            max_violation: 0.0,
            outer_iterations: 0,
            evaluations: 0,
            predicted_avg_energy: Energy::ZERO,
            predicted_worst_energy: Energy::ZERO,
        },
    )?)
}

fn replay(
    name: &str,
    set: &TaskSet,
    cpu: &Processor,
    schedule: &StaticSchedule,
    totals: &[Cycles],
) -> Result<Energy, Box<dyn std::error::Error>> {
    let fixed = totals.to_vec();
    let out = Simulator::new(set, cpu, GreedyReclaim)
        .with_schedule(schedule)
        .with_options(SimOptions {
            record_trace: true,
            deadline_tol_ms: 1e-3,
            ..Default::default()
        })
        .run(&mut |t, _| fixed[t.0])?;
    println!("--- {name}: energy {:.0}·C", out.report.energy.as_units());
    if let Some(trace) = out.trace {
        print!("{}", render_gantt(&trace, set, 20.0, 60));
    }
    if out.report.deadline_misses > 0 {
        println!(
            "    !! {} deadline miss(es), {} saturated dispatch(es) — infeasible schedule",
            out.report.deadline_misses, out.report.saturated_dispatches
        );
    }
    Ok(out.report.energy)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (set, cpu) = motivation();
    let acec = vec![Cycles::from_cycles(500.0); 3];
    let wcec = vec![Cycles::from_cycles(1000.0); 3];
    let (ref_fig1b, ref_fig2, ref_wcs_worst, ref_fig2_worst) = reference_energies();

    println!("Table 1 system: 3 tasks x (WCEC 1000, ACEC 500), 20 ms frame, f = 50·V\n");

    let wcs = hand_schedule(&set, fig1_end_times())?;
    let acs = hand_schedule(&set, fig2_end_times())?;

    // Fig. 1(b): WCS ends + greedy runtime at ACEC.
    let e1 = replay(
        "Fig. 1(b)  WCS ends {6.7, 13.3, 20}, ACEC run",
        &set,
        &cpu,
        &wcs,
        &acec,
    )?;
    // Fig. 2: stretched ends + greedy runtime at ACEC.
    let e2 = replay(
        "Fig. 2     ACS ends {10, 15, 20}, ACEC run",
        &set,
        &cpu,
        &acs,
        &acec,
    )?;
    println!(
        "=> improvement {:.1}% (paper: 24%; reference energies {ref_fig1b:.0} vs {ref_fig2:.0})\n",
        100.0 * improvement_over(e1, e2)
    );

    // Worst-case replays.
    let w1 = replay("Fig. 1(a)  WCS ends, WCEC run", &set, &cpu, &wcs, &wcec)?;
    let w2 = replay(
        "Fig. 2     ACS ends, WCEC run (needs 4 V)",
        &set,
        &cpu,
        &acs,
        &wcec,
    )?;
    println!(
        "=> worst-case increase {:.1}% (paper: 33%; reference {ref_wcs_worst:.0} vs {ref_fig2_worst:.0})\n",
        100.0 * (w2 / w1 - 1.0)
    );

    // The paper's infeasibility observation: at Vmax = 3 V the stretched
    // schedule cannot survive the worst case.
    let (set3, cpu3) = acsched::workloads::motivation_system(Volt::from_volts(3.0));
    let acs3 = hand_schedule(&set3, fig2_end_times())?;
    println!("With Vmax = 3 V the Fig. 2 ends become infeasible in the worst case:");
    let _ = replay("Fig. 2 @ 3V  WCEC run", &set3, &cpu3, &acs3, &wcec)?;

    // Finally: the NLP finds the stretched schedule on its own.
    let synth = synthesize_acs(&set, &cpu, &SynthesisOptions::default())?;
    let ends: Vec<f64> = synth
        .milestones()
        .iter()
        .map(|m| m.end_time.as_ms())
        .collect();
    println!("\nACS synthesizer end times: {ends:.1?} (paper's hand schedule: [10, 15, 20])");
    let es = replay("Synthesized ACS, ACEC run", &set, &cpu, &synth, &acec)?;
    println!(
        "=> synthesized improvement over Fig. 1(b): {:.1}%",
        100.0 * improvement_over(e1, es)
    );
    assert!(verify_worst_case(&synth, &set, &cpu, 1e-5).is_ok());
    Ok(())
}
