#!/usr/bin/env sh
# Verifies that every relative markdown link in README.md,
# ARCHITECTURE.md and docs/** resolves to an existing file or
# directory. No network: http(s) and mailto links are skipped, as are
# intra-page #anchors. Run from the repository root.
set -eu

fail=0
for file in README.md ARCHITECTURE.md $(find docs -name '*.md' 2>/dev/null | sort); do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # Extract ](target) link targets, one per line; iterate line-wise so
    # targets containing spaces (e.g. `](file.md "Title")`) stay intact.
    grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//' |
        while IFS= read -r target; do
            case "$target" in
                http://*|https://*|mailto:*|\#*|'') continue ;;
            esac
            # Strip an in-page anchor and a quoted markdown title.
            path=${target%%#*}
            path=${path%% \"*}
            path=${path%% }
            [ -n "$path" ] || continue
            if [ ! -e "$dir/$path" ]; then
                echo "BROKEN LINK in $file: ($target) -> $dir/$path does not exist"
            fi
        done
done > /tmp/doc-link-report.$$ 2>&1 || true

if grep -q "BROKEN LINK" /tmp/doc-link-report.$$; then
    cat /tmp/doc-link-report.$$
    rm -f /tmp/doc-link-report.$$
    exit 1
fi
rm -f /tmp/doc-link-report.$$
echo "doc links OK"
