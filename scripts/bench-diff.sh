#!/usr/bin/env sh
# Diffs the two most recent benchmarks/BENCH_<n>.json snapshots and
# fails (exit 1) if any shared metric regressed by more than 25%
# (override with BENCH_DIFF_TOLERANCE, a fraction, e.g. 0.10).
#
# Direction matters: *_per_sec metrics regress when they DROP,
# *_ns_* / *_ms latency metrics and peak_rss_mb regress when they
# RISE. allocs_per_job is pinned at zero by the engine arena, so any
# increase at all (beyond float noise) fails regardless of tolerance —
# a ratio gate is useless against a zero baseline. Metrics present in
# only one snapshot (a newly added series, like trace_jobs_per_sec in
# BENCH_3) are reported but never compared; raw counts and
# wall-seconds (sweep_cells, trace_jobs, *_seconds) are reported, not
# gated. With fewer than two snapshots there is nothing to diff:
# exit 0.
#
# Usage: sh scripts/bench-diff.sh [old.json new.json]
# Run from anywhere; paths resolve against the repository root.
set -eu

cd "$(dirname "$0")/.."
tol=${BENCH_DIFF_TOLERANCE:-0.25}

if [ $# -eq 2 ]; then
    old=$1
    new=$2
else
    # The two highest sequence numbers on disk.
    hi=0
    hi2=0
    for f in benchmarks/BENCH_*.json; do
        [ -f "$f" ] || continue
        n=${f##*BENCH_}
        n=${n%.json}
        case "$n" in *[!0-9]* | '') continue ;; esac
        if [ "$n" -gt "$hi" ]; then
            hi2=$hi
            hi=$n
        elif [ "$n" -gt "$hi2" ]; then
            hi2=$n
        fi
    done
    if [ "$hi2" -eq 0 ]; then
        echo "bench-diff: fewer than two snapshots, nothing to compare" >&2
        exit 0
    fi
    old="benchmarks/BENCH_${hi2}.json"
    new="benchmarks/BENCH_${hi}.json"
fi

echo "bench-diff: $old -> $new (tolerance $tol)" >&2

awk -v tol="$tol" -v oldf="$old" -v newf="$new" '
    # Collect "key": value pairs for numeric metrics from each file.
    FILENAME == oldf || FILENAME == newf {
        if (match($0, /"[a-z_]+":[ ]*-?[0-9.]+/)) {
            pair = substr($0, RSTART, RLENGTH)
            split(pair, kv, /":[ ]*/)
            key = substr(kv[1], 2)
            val = kv[2] + 0
            if (key == "seq") next
            if (FILENAME == oldf) o[key] = val
            else n[key] = val
        }
    }
    END {
        bad = 0
        for (key in n) {
            if (!(key in o)) {
                printf "  %-22s %12.2f  (new series, not compared)\n", key, n[key]
                continue
            }
            # Negative sentinel: the metric could not be measured on one
            # side (peak_rss_mb without /proc).
            if (o[key] < 0 || n[key] < 0) continue
            # Zero-baseline absolute gate: the allocation-free contract.
            if (key == "allocs_per_job") {
                flag = ""
                if (n[key] > o[key] + 0.001) {
                    flag = "  <-- REGRESSION"
                    bad = 1
                }
                printf "  %-22s %12.3f -> %12.3f%s\n", key, o[key], n[key], flag
                continue
            }
            if (o[key] == 0) continue
            change = (n[key] - o[key]) / o[key]
            # per_sec throughput: regression = drop. Everything else
            # recorded here is a latency: regression = rise. Raw cell
            # counts / wall-seconds are context, never gated.
            if (key ~ /per_sec$/) delta = -change
            else delta = change
            flag = ""
            if (delta > tol && key !~ /^(sweep_cells|trace_jobs|sweep_seconds|trace_seconds)$/) {
                flag = "  <-- REGRESSION"
                bad = 1
            }
            printf "  %-22s %12.2f -> %12.2f  (%+.1f%%)%s\n", \
                key, o[key], n[key], change * 100, flag
        }
        if (bad) {
            printf "bench-diff: regression beyond %.0f%% tolerance\n", tol * 100 > "/dev/stderr"
            exit 1
        }
    }
' "$old" "$new"
