#!/usr/bin/env sh
# Records one point on the repo's performance trajectory: runs the
# criterion dispatch + reopt benches plus a timed release run of
# scenarios/multicore_sweep.txt, and appends the headline numbers as
# benchmarks/BENCH_<n>.json (next free n; earlier snapshots are never
# rewritten, so the directory reads as a time series across commits).
#
#   dispatch_ns_per_job   mean of bench `trait_object_greedy`
#   reopt_warm_ms         mean of bench reopt_boundary/`warm_h16`
#   reopt_cold_ms         mean of bench reopt_boundary/`cold_full`
#   sweep_cells_per_sec   cells/s for the multicore_sweep campaign
#   trace_jobs_per_sec    replayed jobs/s for a generated 1M-job
#                         bursty trace through scenarios/bursty_trace.txt
#   allocs_per_job        steady-state allocator acquisitions per job
#                         (hotpath_stats; the arena pins this at 0.000)
#   peak_rss_mb           peak resident set of an in-process
#                         multicore_sweep campaign (VmHWM)
#
# CRITERION_QUICK=1 shrinks the criterion measurement windows 10x for
# smoke runs; the snapshot records which mode produced it. Run from
# anywhere; paths resolve against the repository root.
set -eu

cd "$(dirname "$0")/.."
mkdir -p benchmarks

quick=${CRITERION_QUICK:-0}

# Next free sequence number.
seq=1
for f in benchmarks/BENCH_*.json; do
    [ -f "$f" ] || continue
    n=${f##*BENCH_}
    n=${n%.json}
    case "$n" in *[!0-9]* | '') continue ;; esac
    [ "$n" -ge "$seq" ] && seq=$((n + 1))
done

echo "bench-trajectory: running criterion benches (quick=$quick)..." >&2
dispatch_out=$(cargo bench -p acs-bench --bench dispatch 2>&1)
reopt_out=$(cargo bench -p acs-bench --bench reopt 2>&1)

# mean_ns "<bench output>" <name>: the bench's mean, in nanoseconds.
# Shim lines look like `  <name>  mean  123.4 ns  best ... worst ...`.
mean_ns() {
    printf '%s\n' "$1" | awk -v name="$2" '
        $1 == name && $2 == "mean" {
            v = $3; u = $4
            if (u == "ns") m = 1
            else if (u == "us") m = 1e3
            else if (u == "ms") m = 1e6
            else m = 1e9
            printf "%.1f", v * m
            exit
        }'
}

dispatch_ns=$(mean_ns "$dispatch_out" trait_object_greedy)
warm_ns=$(mean_ns "$reopt_out" warm_h16)
cold_ns=$(mean_ns "$reopt_out" cold_full)
for v in "$dispatch_ns" "$warm_ns" "$cold_ns"; do
    if [ -z "$v" ]; then
        echo "bench-trajectory: failed to parse a bench mean" >&2
        exit 1
    fi
done

echo "bench-trajectory: timing release multicore_sweep run..." >&2
cargo build --release --bin acsched >/dev/null 2>&1
# `run` infers the sink format from the extension, so give the temp
# file a .csv suffix (portably — BSD mktemp has no --suffix).
tmp_base=$(mktemp)
sweep_csv="$tmp_base.csv"
trap 'rm -f "$tmp_base" "$sweep_csv"' EXIT
start_ns=$(date +%s%N)
target/release/acsched run scenarios/multicore_sweep.txt --quiet --out "$sweep_csv" >/dev/null 2>&1
end_ns=$(date +%s%N)
cells=$(($(wc -l <"$sweep_csv") - 1)) # minus the CSV header

# Streaming-trace throughput: generate a million-job bursty trace and
# replay it through every cell of scenarios/bursty_trace.txt. The
# scenario multiplies the trace across its policy grid, so the metric
# counts jobs actually dispatched (trace jobs x cells), not file lines.
echo "bench-trajectory: timing 1M-job bursty trace replay..." >&2
trace_jobs=1000000
mkdir -p traces
target/release/acsched trace gen --profile bursty --jobs "$trace_jobs" \
    --out traces/bursty.trace 2>/dev/null
trace_csv="$tmp_base.trace.csv"
trap 'rm -f "$tmp_base" "$sweep_csv" "$trace_csv"' EXIT
trace_start_ns=$(date +%s%N)
target/release/acsched run scenarios/bursty_trace.txt --quiet --out "$trace_csv" >/dev/null 2>&1
trace_end_ns=$(date +%s%N)
trace_cells=$(($(wc -l <"$trace_csv") - 1))

# Hot-path memory statistics: steady-state allocations per job and the
# peak RSS of the sweep campaign run in-process.
echo "bench-trajectory: measuring hot-path allocation/memory stats..." >&2
cargo build --release -p acs-bench --bin hotpath_stats >/dev/null 2>&1
hotpath_out=$(target/release/hotpath_stats scenarios/multicore_sweep.txt)
allocs_per_job=$(printf '%s\n' "$hotpath_out" | awk '$1 == "allocs_per_job" { print $2 }')
peak_rss_mb=$(printf '%s\n' "$hotpath_out" | awk '$1 == "peak_rss_mb" { print $2 }')
if [ -z "$allocs_per_job" ]; then
    echo "bench-trajectory: hotpath_stats reported no allocs_per_job" >&2
    exit 1
fi
# VmHWM needs /proc; record -1 where unavailable (never compared).
peak_rss_mb=${peak_rss_mb:--1}

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
now=$(date -u +%Y-%m-%dT%H:%M:%SZ)

out="benchmarks/BENCH_${seq}.json"
awk -v seq="$seq" -v date="$now" -v commit="$commit" -v quick="$quick" \
    -v d="$dispatch_ns" -v w="$warm_ns" -v c="$cold_ns" \
    -v cells="$cells" -v s="$start_ns" -v e="$end_ns" \
    -v tj="$trace_jobs" -v tc="$trace_cells" \
    -v ts="$trace_start_ns" -v te="$trace_end_ns" \
    -v apj="$allocs_per_job" -v rss="$peak_rss_mb" 'BEGIN {
    secs = (e - s) / 1e9
    tsecs = (te - ts) / 1e9
    printf "{\n"
    printf "  \"seq\": %d,\n", seq
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"quick\": %s,\n", (quick == "1" ? "true" : "false")
    printf "  \"dispatch_ns_per_job\": %.1f,\n", d
    printf "  \"reopt_warm_ms\": %.3f,\n", w / 1e6
    printf "  \"reopt_cold_ms\": %.3f,\n", c / 1e6
    printf "  \"sweep_cells\": %d,\n", cells
    printf "  \"sweep_seconds\": %.2f,\n", secs
    printf "  \"sweep_cells_per_sec\": %.2f,\n", cells / secs
    printf "  \"trace_jobs\": %d,\n", tj * tc
    printf "  \"trace_seconds\": %.2f,\n", tsecs
    printf "  \"trace_jobs_per_sec\": %.0f,\n", tj * tc / tsecs
    printf "  \"allocs_per_job\": %.3f,\n", apj
    printf "  \"peak_rss_mb\": %.1f\n", rss
    printf "}\n"
}' >"$out"

echo "bench-trajectory: wrote $out" >&2
cat "$out"
